"""System tests for the LIMA unit (loops of indirect memory accesses)."""

import pytest

from repro.cpu import Alu, Load, Thread
from repro.params import SoCConfig
from repro.system import Soc


def build():
    soc = Soc(SoCConfig())
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    return soc, aspace, api


def test_lima_queue_mode_delivers_a_of_b_in_order():
    soc, aspace, api = build()
    b = soc.array(aspace, [3, 0, 2, 1, 3], name="B")
    a = soc.array(aspace, [10.0, 11.0, 12.0, 13.0], name="A")
    got = []

    def program():
        handle = yield from api.open(0)
        yield from handle.lima_configure(a.base, b.base)
        yield from handle.lima_run(0, 5, mode="queue")
        for _ in range(5):
            got.append((yield from handle.consume()))

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert got == [13.0, 10.0, 12.0, 11.0, 13.0]
    assert soc.stats.get("maple0.lima_elements") == 5


def test_lima_respects_subrange():
    soc, aspace, api = build()
    b = soc.array(aspace, list(range(10)), name="B")
    a = soc.array(aspace, [float(100 + i) for i in range(10)], name="A")
    got = []

    def program():
        handle = yield from api.open(0)
        yield from handle.lima_configure(a.base, b.base)
        yield from handle.lima_run(4, 7, mode="queue")
        for _ in range(3):
            got.append((yield from handle.consume()))

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert got == [104.0, 105.0, 106.0]


def test_lima_empty_range_is_noop():
    soc, aspace, api = build()
    b = soc.array(aspace, [0], name="B")
    a = soc.array(aspace, [1.0], name="A")

    def program():
        handle = yield from api.open(0)
        yield from handle.lima_configure(a.base, b.base)
        yield from handle.lima_run(0, 0, mode="queue")
        yield Alu(100)

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert soc.stats.get("maple0.lima_elements") == 0


def test_lima_chunks_b_in_cache_lines():
    soc, aspace, api = build()
    n = 20  # indices span 3 cache lines (8 words each)
    b = soc.array(aspace, [0] * n, name="B")
    a = soc.array(aspace, [5.0], name="A")

    def program():
        handle = yield from api.open(0)
        yield from handle.lima_configure(a.base, b.base)
        yield from handle.lima_run(0, n, mode="queue")
        for _ in range(n):
            yield from handle.consume()

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert soc.stats.get("maple0.lima_chunks") == 3


def test_lima_llc_mode_prefetches_into_l2_only():
    soc, aspace, api = build()
    b = soc.array(aspace, [0, 8, 16], name="B")  # distinct lines of A
    a = soc.array(aspace, [float(i) for i in range(24)], name="A")

    def program():
        handle = yield from api.open(0)
        yield from handle.lima_configure(a.base, b.base)
        yield from handle.lima_run(0, 3, mode="llc")
        yield Alu(1500)  # let prefetches land
        # Demand loads now hit in the LLC.
        for i in (0, 8, 16):
            value = yield Load(a.addr(i))
            assert value == float(i)

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert soc.stats.get("l2.prefetches") == 3
    line_mask = ~(soc.config.line_size - 1)
    for i in (0, 8, 16):
        paddr = aspace.page_table.lookup(a.addr(i))
        assert soc.memsys.l2.contains(paddr & line_mask)


def test_lima_overlaps_with_compute():
    """LIMA expansion runs concurrently with the core: total time is far
    below serialized DRAM fetches."""
    soc, aspace, api = build()
    n = 16
    stride = 8  # one line per element -> distinct DRAM fetch each
    b = soc.array(aspace, [i * stride for i in range(n)], name="B")
    a = soc.array(aspace, [float(i) for i in range(n * stride)], name="A")
    got = []

    def program():
        handle = yield from api.open(0)
        yield from handle.lima_configure(a.base, b.base)
        yield from handle.lima_run(0, n, mode="queue")
        for _ in range(n):
            got.append((yield from handle.consume()))

    elapsed = soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert got == [float(i * stride) for i in range(n)]
    assert elapsed < 0.5 * n * soc.config.dram_latency


def test_lima_start_before_configure_fails():
    soc, aspace, api = build()

    def program():
        handle = yield from api.open(0)
        yield from handle.lima_run(0, 4, mode="queue")

    with pytest.raises(RuntimeError, match="before configuration"):
        soc.run_threads([(0, Thread(program(), aspace, "t"))])


def test_lima_invalid_mode_rejected():
    soc, aspace, api = build()
    b = soc.array(aspace, [0], name="B")
    a = soc.array(aspace, [1.0], name="A")

    def program():
        handle = yield from api.open(0)
        yield from handle.lima_configure(a.base, b.base)
        yield from handle.lima_run(0, 1, mode="l1")

    with pytest.raises(ValueError, match="mode"):
        soc.run_threads([(0, Thread(program(), aspace, "t"))])


def test_lima_negative_range_rejected():
    soc, aspace, api = build()
    b = soc.array(aspace, [0], name="B")
    a = soc.array(aspace, [1.0], name="A")

    def program():
        handle = yield from api.open(0)
        yield from handle.lima_configure(a.base, b.base)
        yield from handle.lima_run(5, 2, mode="queue")

    with pytest.raises(ValueError, match="range"):
        soc.run_threads([(0, Thread(program(), aspace, "t"))])


def test_lima_non_integer_index_raises():
    soc, aspace, api = build()
    b = soc.array(aspace, [0.5], name="B")  # floats are not indices
    a = soc.array(aspace, [1.0], name="A")

    def program():
        handle = yield from api.open(0)
        yield from handle.lima_configure(a.base, b.base)
        yield from handle.lima_run(0, 1, mode="queue")
        yield from handle.consume()

    with pytest.raises(TypeError, match="not an integer"):
        soc.run_threads([(0, Thread(program(), aspace, "t"))])


def test_two_lima_streams_on_different_queues():
    soc, aspace, api = build()
    b = soc.array(aspace, [0, 1, 2, 3], name="B")
    a = soc.array(aspace, [9.0, 8.0, 7.0, 6.0], name="A")
    got = {0: [], 1: []}

    def program():
        q0 = yield from api.open(0)
        q1 = yield from api.open(1)
        yield from q0.lima_configure(a.base, b.base)
        yield from q1.lima_configure(a.base, b.base)
        yield from q0.lima_run(0, 2, mode="queue")
        yield from q1.lima_run(2, 4, mode="queue")
        for _ in range(2):
            got[0].append((yield from q0.consume()))
        for _ in range(2):
            got[1].append((yield from q1.consume()))

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert got[0] == [9.0, 8.0]
    assert got[1] == [7.0, 6.0]
