"""Unit tests for the MMIO opcode codec."""

import pytest
from hypothesis import given, strategies as st

from repro.core.opcodes import (
    LoadOp,
    MAX_OPCODES,
    MAX_QUEUES,
    StoreOp,
    decode_offset,
    encode_addr,
)


def test_encode_decode_roundtrip_simple():
    base = 1 << 40
    addr = encode_addr(base, StoreOp.PRODUCE_PTR, queue_id=5)
    opcode, queue_id = decode_offset(addr - base)
    assert opcode == StoreOp.PRODUCE_PTR
    assert queue_id == 5


def test_encode_requires_aligned_base():
    with pytest.raises(ValueError):
        encode_addr((1 << 40) + 8, 0, 0)


def test_encode_range_checks():
    base = 1 << 40
    with pytest.raises(ValueError):
        encode_addr(base, MAX_OPCODES, 0)
    with pytest.raises(ValueError):
        encode_addr(base, 0, MAX_QUEUES)
    with pytest.raises(ValueError):
        encode_addr(base, -1, 0)


def test_decode_rejects_unaligned_and_outside():
    with pytest.raises(ValueError):
        decode_offset(0x4)
    with pytest.raises(ValueError):
        decode_offset(0x1000)


def test_opcode_space_is_64_per_access_type():
    # bits 3..8 give 64 codes; load and store spaces are independent.
    assert MAX_OPCODES == 64
    assert MAX_QUEUES == 8


def test_all_addresses_stay_inside_the_page():
    base = 1 << 40
    for opcode in range(MAX_OPCODES):
        for queue_id in range(MAX_QUEUES):
            addr = encode_addr(base, opcode, queue_id)
            assert base <= addr < base + 4096


@given(st.integers(min_value=0, max_value=MAX_OPCODES - 1),
       st.integers(min_value=0, max_value=MAX_QUEUES - 1))
def test_roundtrip_property(opcode, queue_id):
    base = 1 << 40
    addr = encode_addr(base, opcode, queue_id)
    assert decode_offset(addr - base) == (opcode, queue_id)


@given(st.tuples(st.integers(min_value=0, max_value=MAX_OPCODES - 1),
                 st.integers(min_value=0, max_value=MAX_QUEUES - 1)),
       st.tuples(st.integers(min_value=0, max_value=MAX_OPCODES - 1),
                 st.integers(min_value=0, max_value=MAX_QUEUES - 1)))
def test_encoding_is_injective(a, b):
    base = 1 << 40
    if a != b:
        assert encode_addr(base, *a) != encode_addr(base, *b)


def test_load_and_store_opcodes_fit_the_field():
    for op in LoadOp:
        assert 0 <= op < MAX_OPCODES
    for op in StoreOp:
        assert 0 <= op < MAX_OPCODES
