"""Unit and property tests for the scratchpad hardware queues."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.queues import HwQueue, QueueError, Scratchpad
from repro.sim import Simulator, Stats


def make_queue(capacity=4):
    sim = Simulator()
    stats = Stats()
    return sim, HwQueue(sim, 0, capacity, stats.scoped("q"))


def drive(sim, gen):
    box = {}

    def wrapper():
        box["value"] = yield from gen

    sim.spawn(wrapper())
    sim.run()
    return box.get("value")


def test_reserve_fill_pop_in_order():
    sim, queue = make_queue()
    i0 = drive(sim, queue.reserve())
    i1 = drive(sim, queue.reserve())
    queue.fill(i0, "a")
    queue.fill(i1, "b")
    assert drive(sim, queue.pop()) == "a"
    assert drive(sim, queue.pop()) == "b"


def test_out_of_order_fill_pops_in_program_order():
    sim, queue = make_queue()
    i0 = drive(sim, queue.reserve())
    i1 = drive(sim, queue.reserve())
    queue.fill(i1, "late-arrives-first")
    assert not queue.head_ready()  # head slot still waiting for memory
    queue.fill(i0, "first")
    assert drive(sim, queue.pop()) == "first"
    assert drive(sim, queue.pop()) == "late-arrives-first"


def test_pop_blocks_until_fill():
    sim, queue = make_queue()
    index = drive(sim, queue.reserve())
    got = []

    def consumer():
        value = yield from queue.pop()
        got.append((sim.now, value))

    def producer():
        yield 50
        queue.fill(index, 7)

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [(50, 7)]


def test_reserve_blocks_when_full():
    sim, queue = make_queue(capacity=2)
    i0 = drive(sim, queue.reserve())
    drive(sim, queue.reserve())
    queue.fill(i0, "x")
    times = {}

    def producer():
        index = yield from queue.reserve()  # must wait for a pop
        times["reserved"] = sim.now
        queue.fill(index, "y")

    def consumer():
        yield 30
        value = yield from queue.pop()
        times["popped"] = (sim.now, value)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert times["reserved"] == 30
    assert times["popped"] == (30, "x")


def test_fill_requires_reserved_slot():
    sim, queue = make_queue()
    with pytest.raises(QueueError):
        queue.fill(0, "x")
    index = drive(sim, queue.reserve())
    queue.fill(index, "x")
    with pytest.raises(QueueError):
        queue.fill(index, "again")


def test_try_reserve_and_try_pop():
    sim, queue = make_queue(capacity=1)
    assert queue.try_pop() is None
    index = queue.try_reserve()
    assert index == 0
    assert queue.try_reserve() is None  # full
    queue.fill(index, 5)
    assert queue.try_pop() == 5
    assert queue.try_pop() is None


def test_wraparound_reuses_slots():
    sim, queue = make_queue(capacity=2)
    for round_no in range(5):
        index = drive(sim, queue.reserve())
        queue.fill(index, round_no)
        assert drive(sim, queue.pop()) == round_no
    assert queue.produced == 5
    assert queue.consumed == 5


def test_reset_clears_state():
    sim, queue = make_queue()
    index = drive(sim, queue.reserve())
    queue.fill(index, 1)
    queue.owner = "core0"
    queue.reset()
    assert queue.occupied == 0
    assert queue.owner is None
    assert queue.space.available == queue.capacity
    assert not queue.ready.opened


def test_reset_with_inflight_fetch_raises():
    sim, queue = make_queue()
    drive(sim, queue.reserve())  # reserved, never filled
    with pytest.raises(QueueError):
        queue.reset()


def test_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        HwQueue(sim, 0, 0, Stats().scoped("q"))


def test_scratchpad_geometry_matches_tapeout():
    sim = Simulator()
    sp = Scratchpad(sim, 1024, 8, 4, Stats().scoped("sp"))
    assert len(sp) == 8
    assert all(q.capacity == 32 for q in sp.queues)  # §5.3: 32 x 4B x 8 = 1KB


def test_scratchpad_uneven_split_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Scratchpad(sim, 1000, 8, 4, Stats().scoped("sp"))


def test_scratchpad_queue_bounds():
    sim = Simulator()
    sp = Scratchpad(sim, 1024, 8, 4, Stats().scoped("sp"))
    with pytest.raises(KeyError):
        sp.queue(8)


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=60))
@settings(max_examples=50)
def test_fifo_order_preserved_under_random_fill_order(values):
    """Whatever order memory responses arrive, pops deliver program order."""
    import random

    sim = Simulator()
    queue = HwQueue(sim, 0, max(len(values), 1), Stats().scoped("q"))
    indices = [drive(sim, queue.reserve()) for _ in values]
    rng = random.Random(42)
    fill_order = list(range(len(values)))
    rng.shuffle(fill_order)
    for pos in fill_order:
        queue.fill(indices[pos], values[pos])
    popped = [drive(sim, queue.pop()) for _ in values]
    assert popped == values


# -- randomized interleavings vs a deque model ----------------------------------
#
# The queue's observable contract, stated against the simplest possible
# model: reservations append a placeholder to a FIFO, fills complete any
# reserved placeholder (out of order), pops deliver completed values
# strictly in reservation order.  Hypothesis drives arbitrary
# produce/consume/config interleavings; the invariants below must hold
# after every single operation — FIFO order, wrap-around slot reuse,
# and the full/empty flags.


class DequeModel:
    """Golden model: a deque of [filled?, value] cells in program order."""

    def __init__(self, capacity):
        from collections import deque
        self.capacity = capacity
        self.cells = deque()  # one per reserved-or-valid slot
        self.popped = []
        self.produced = 0
        self.consumed = 0

    @property
    def occupied(self):
        return len(self.cells)

    @property
    def full(self):
        return len(self.cells) == self.capacity

    @property
    def head_ready(self):
        return bool(self.cells) and self.cells[0][0]

    def reserve(self):
        assert not self.full
        self.cells.append([False, None])

    def fill(self, pending_pos, value):
        pending = [cell for cell in self.cells if not cell[0]]
        cell = pending[pending_pos]
        cell[0] = True
        cell[1] = value
        self.produced += 1

    def pop(self):
        assert self.head_ready
        _, value = self.cells.popleft()
        self.popped.append(value)
        self.consumed += 1
        return value

    def reset_allowed(self):
        return not any(not filled for filled, _ in self.cells)

    def reset(self):
        self.cells.clear()


OPS = st.lists(
    st.one_of(
        st.just(("reserve",)),
        st.tuples(st.just("fill"), st.integers(0, 7)),
        st.just(("pop",)),
        st.just(("reset",)),
    ),
    min_size=1, max_size=120)


@given(st.integers(min_value=1, max_value=8), OPS)
@settings(max_examples=120, deadline=None)
def test_random_interleavings_match_deque_model(capacity, ops):
    """Arbitrary produce/consume/config interleavings preserve FIFO
    order, wrap-around slot reuse, and the full/empty invariants."""
    sim = Simulator()
    queue = HwQueue(sim, 0, capacity, Stats().scoped("q"))
    model = DequeModel(capacity)
    pending = []  # reserved-but-unfilled slot indices, in program order
    next_value = 0

    for op in ops:
        if op[0] == "reserve":
            index = queue.try_reserve()
            if model.full:
                assert index is None  # full flag: reserve must refuse
            else:
                assert index is not None
                pending.append(index)
                model.reserve()
        elif op[0] == "fill":
            if not pending:
                continue
            pos = op[1] % len(pending)  # out-of-order completion
            index = pending.pop(pos)
            queue.fill(index, next_value)
            model.fill(pos, next_value)
            next_value += 1
        elif op[0] == "pop":
            value = queue.try_pop()
            if model.head_ready:
                assert value == model.pop()  # strict program order
            else:
                assert value is None  # empty/head-pending flag
        elif op[0] == "reset":
            if model.reset_allowed():
                queue.reset()
                model.reset()
                pending.clear()
            else:
                with pytest.raises(QueueError):
                    queue.reset()

        # Invariants after *every* operation.
        assert queue.occupied == model.occupied
        assert queue.free_slots == capacity - model.occupied
        assert (queue.free_slots == 0) == model.full      # full flag
        assert queue.head_ready() == model.head_ready     # empty/ready flag
        assert queue.space.available == capacity - model.occupied
        assert queue.valid_entries() == sum(
            1 for filled, _ in model.cells if filled)

    # Drain what's drainable and confirm total FIFO order end to end.
    while pending:
        index = pending.pop(0)
        queue.fill(index, next_value)
        model.fill(0, next_value)
        next_value += 1
    while model.head_ready:
        assert queue.try_pop() == model.pop()
    assert queue.occupied == 0 == model.occupied
    assert queue.produced == model.produced
    assert queue.consumed == model.consumed
    assert queue.try_pop() is None  # empty flag at quiescence


@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=2, max_value=40))
@settings(max_examples=60, deadline=None)
def test_wraparound_preserves_fifo_across_many_generations(capacity, total):
    """Slots are reused ``total/capacity`` times over; order still holds."""
    sim = Simulator()
    queue = HwQueue(sim, 0, capacity, Stats().scoped("q"))
    popped = []
    for value in range(total):
        index = queue.try_reserve()
        assert index is not None
        assert index == value % capacity  # circular slot reuse
        queue.fill(index, value)
        popped.append(queue.try_pop())
    assert popped == list(range(total))
    assert queue.produced == queue.consumed == total


@given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=100))
@settings(max_examples=40)
def test_producer_consumer_conservation(capacity, total):
    """A pipelined producer/consumer pair never loses or duplicates items."""
    sim = Simulator()
    queue = HwQueue(sim, 0, capacity, Stats().scoped("q"))
    received = []

    def producer():
        for i in range(total):
            index = yield from queue.reserve()
            yield 1
            queue.fill(index, i)

    def consumer():
        for _ in range(total):
            value = yield from queue.pop()
            received.append(value)
            yield 2

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert received == list(range(total))
    assert queue.occupied == 0


# -- delayed acks: the memory system answers out of order -----------------------


@given(st.integers(min_value=1, max_value=8),
       st.lists(st.tuples(st.integers(min_value=0, max_value=60),
                          st.integers(min_value=0, max_value=6)),
                min_size=1, max_size=48))
@settings(max_examples=80, deadline=None)
def test_delayed_acks_never_lose_duplicate_or_reorder(capacity, items):
    """PRODUCE_PTR semantics under fault-injected latency: each fill (the
    memory ack) lands after an arbitrary delay, so completions arrive in
    arbitrary order while the consumer races ahead.  A live
    :class:`QueueShadow` cross-checks every event; the consumer must see
    exactly 0..n-1 in order, and the shadow must audit clean at drain."""
    from repro.sim.invariants import QueueShadow

    sim = Simulator()
    queue = HwQueue(sim, 0, capacity, Stats().scoped("q"))
    shadow = QueueShadow(queue)
    queue.observer = shadow
    total = len(items)
    received = []

    def ack(index, value, delay):
        yield delay
        queue.fill(index, value)

    def producer():
        for value, (delay, _) in enumerate(items):
            index = yield from queue.reserve()
            sim.spawn(ack(index, value, delay), name="mem.ack")
            yield 1  # issue slot

    def consumer():
        for _, (_, gap) in enumerate(items):
            value = yield from queue.pop()
            received.append(value)
            yield gap

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert received == list(range(total))
    assert shadow.check_quiescent() == []
    assert shadow.reserves == shadow.fills == shadow.pops == total
    assert queue.produced == queue.consumed == total
    assert queue.occupied == 0
