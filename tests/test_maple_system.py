"""Full-system integration tests: cores driving MAPLE through MMIO.

These exercise the complete path of Fig. 3 — core pipeline, TLB, MMIO
page, NoC, MAPLE decode, produce/consume pipelines, MAPLE MMU, DRAM — on
a freshly built SoC per test.
"""

import pytest

from repro.core.api import MapleApiError
from repro.cpu import Alu, Load, Thread
from repro.params import SoCConfig
from repro.system import Soc


def build_soc(**overrides):
    cfg = SoCConfig().with_overrides(**overrides) if overrides else SoCConfig()
    return Soc(cfg)


def test_attach_maps_device_page():
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace, core_tile=0)
    assert aspace.page_table.lookup(api.page_vaddr) == soc.maples[0].page_paddr


def test_attach_is_idempotent_per_process():
    soc = build_soc()
    aspace = soc.new_process()
    api1 = soc.driver.attach(aspace)
    api2 = soc.driver.attach(aspace)
    assert api1 is api2


def test_produce_consume_data_roundtrip():
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    got = []
    # The OPEN binding is per-thread; the consumer side of a decoupled pair
    # reuses the producer's queue through a raw handle (the API maps logical
    # queues onto shared hardware queues, §3).
    from repro.core.api import QueueHandle

    def producer():
        handle = yield from api.open(0)
        for i in range(5):
            yield from handle.produce(i * 10)

    def consumer():
        handle = QueueHandle(api, 0)
        for _ in range(5):
            value = yield from handle.consume()
            got.append(value)

    soc.run_threads([
        (0, Thread(producer(), aspace, "producer")),
        (1, Thread(consumer(), aspace, "consumer")),
    ])
    assert got == [0, 10, 20, 30, 40]


def test_produce_ptr_fetches_memory_in_program_order():
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    data = soc.array(aspace, [5.5, 6.5, 7.5, 8.5], name="A")
    got = []

    def access():
        handle = yield from api.open(0)
        for i in (2, 0, 3, 1):
            yield from handle.produce_ptr(data.addr(i))

    def execute():
        from repro.core.api import QueueHandle
        handle = QueueHandle(api, 0)
        for _ in range(4):
            value = yield from handle.consume()
            got.append(value)

    soc.run_threads([
        (0, Thread(access(), aspace, "access")),
        (1, Thread(execute(), aspace, "execute")),
    ])
    assert got == [7.5, 5.5, 8.5, 6.5]
    assert soc.stats.get("maple0.produce_ptrs") == 4


def test_consume_round_trip_latency_near_25_cycles():
    """Fig. 14: a ready consume costs ~25 cycles + 1/hop from core 0."""
    soc = build_soc()
    analytic = soc.maples[0].round_trip_cycles(core_tile=0)
    assert analytic == 25

    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    measured = {}

    def program():
        handle = yield from api.open(0)
        yield from handle.produce(42)
        yield Alu(300)  # let the fill land so the consume does not block
        start = soc.sim.now
        value = yield from handle.consume()
        measured["latency"] = soc.sim.now - start
        assert value == 42

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert measured["latency"] == analytic


def test_consume_blocks_until_produce():
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    times = {}

    def consumer():
        handle = yield from api.open(0)
        value = yield from handle.consume()
        times["consumed"] = (soc.sim.now, value)

    def producer():
        from repro.core.api import QueueHandle
        handle = QueueHandle(api, 0)
        # Wait long enough that even the consumer's cold page-table walk
        # (three DRAM-latency PTE reads for the MMIO page) has finished.
        yield Alu(3000)
        yield from handle.produce("late")

    soc.run_threads([
        (0, Thread(consumer(), aspace, "c")),
        (1, Thread(producer(), aspace, "p")),
    ])
    when, value = times["consumed"]
    assert value == "late"
    assert when > 3000
    assert soc.stats.get("maple0.consume_stalls") == 1


def test_full_queue_backpressures_producer():
    # Queue capacity 32 + produce buffer 4: the 37th produce must stall
    # until a consume frees a slot.
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    cfg = soc.config
    capacity = cfg.queue_entries
    buffered = capacity + cfg.produce_buffer_entries
    times = {}

    def producer():
        handle = yield from api.open(0)
        for i in range(buffered + 1):
            yield from handle.produce(i)
        times["producer_done"] = soc.sim.now

    def consumer():
        from repro.core.api import QueueHandle
        handle = QueueHandle(api, 0)
        yield Alu(5000)
        times["consume_at"] = soc.sim.now
        for _ in range(buffered + 1):
            yield from handle.consume()

    soc.run_threads([
        (0, Thread(producer(), aspace, "p")),
        (1, Thread(consumer(), aspace, "c")),
    ])
    assert times["producer_done"] > times["consume_at"]
    assert soc.stats.get("maple0.produce_backpressure") >= 1


def test_packed_consume_returns_two_entries():
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    got = []

    def program():
        handle = yield from api.open(0)
        for i in range(4):
            yield from handle.produce(i)
        pair1 = yield from handle.consume_packed()
        pair2 = yield from handle.consume_packed()
        got.extend([pair1, pair2])

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert got == [(0, 1), (2, 3)]
    assert soc.stats.get("maple0.consumes_packed") == 2


def test_packed_consume_requires_4_byte_entries():
    soc = build_soc(queue_entry_bytes=8)
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)

    def program():
        handle = yield from api.open(0)
        yield from handle.produce(1)
        yield from handle.produce(2)
        yield from handle.consume_packed()

    from repro.core.engine import MapleError
    with pytest.raises(MapleError):
        soc.run_threads([(0, Thread(program(), aspace, "t"))])


def test_open_grants_exclusive_binding():
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    outcome = {}

    def first():
        handle = yield from api.open(0)
        outcome["first"] = True
        yield Alu(100)
        yield from handle.close()

    def second():
        yield Alu(50)  # after first OPEN, before CLOSE
        try:
            yield from api.open(0)
            outcome["second"] = "granted"
        except MapleApiError:
            outcome["second"] = "denied"

    soc.run_threads([
        (0, Thread(first(), aspace, "a")),
        (1, Thread(second(), aspace, "b")),
    ])
    assert outcome == {"first": True, "second": "denied"}


def test_close_then_reopen():
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)

    def program():
        handle = yield from api.open(0)
        yield from handle.close()
        handle2 = yield from api.open(0)  # rebind succeeds after close
        yield from handle2.produce(1)
        value = yield from handle2.consume()
        assert value == 1

    soc.run_threads([(0, Thread(program(), aspace, "t"))])


def test_use_after_close_raises():
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)

    def program():
        handle = yield from api.open(0)
        yield from handle.close()
        with pytest.raises(MapleApiError):
            yield from handle.produce(1)

    soc.run_threads([(0, Thread(program(), aspace, "t"))])


def test_runahead_overlaps_fetches():
    """The Access thread keeps producing while MAPLE fetches in parallel:
    total time must be far below N serialized DRAM accesses (Fig. 2)."""
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    n = 16
    # Spread data across lines so each fetch is a distinct DRAM access.
    data = soc.array(aspace, [float(i) for i in range(n * 8)], name="A")
    got = []

    def access():
        handle = yield from api.open(0)
        for i in range(n):
            yield from handle.produce_ptr(data.addr(i * 8))

    def execute():
        from repro.core.api import QueueHandle
        handle = QueueHandle(api, 0)
        for _ in range(n):
            got.append((yield from handle.consume()))

    elapsed = soc.run_threads([
        (0, Thread(access(), aspace, "access")),
        (1, Thread(execute(), aspace, "execute")),
    ])
    assert got == [float(i * 8) for i in range(n)]
    serialized = n * soc.config.dram_latency
    assert elapsed < 0.5 * serialized  # MLP must be visible
    assert soc.stats.histogram("maple0.fetch_mlp").max > 1


def test_stat_counters_via_debug_api():
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    stats_read = {}

    def program():
        handle = yield from api.open(0)
        for i in range(3):
            yield from handle.produce(i)
        yield from handle.consume()
        stats_read["produced"] = yield from handle.stat_produced()
        stats_read["consumed"] = yield from handle.stat_consumed()
        stats_read["occupancy"] = yield from handle.stat_occupancy()

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert stats_read == {"produced": 3, "consumed": 1, "occupancy": 2}


def test_maple_page_fault_resolved_by_driver():
    """PRODUCE_PTR into a lazily-mapped page: MAPLE's walker faults, the
    driver maps the page, and the fetch completes (§3.5)."""
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    lazy = soc.array(aspace, 8, name="lazy", lazy=True)
    got = []

    def program():
        handle = yield from api.open(0)
        yield from handle.produce_ptr(lazy.addr(0))
        got.append((yield from handle.consume()))

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert got == [0]  # demand-zero page
    assert soc.stats.get("maple0.page_faults") == 1
    assert soc.stats.get("os.demand_mapped_pages") == 1


def test_shootdown_reaches_maple_tlb():
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    data = soc.array(aspace, [1.0] * 8, name="A")

    def program():
        handle = yield from api.open(0)
        yield from handle.produce_ptr(data.addr(0))
        yield from handle.consume()

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    maple_tlb = soc.maples[0].mmu.tlb
    assert maple_tlb.translate(data.addr(0)) is not None
    soc.os.munmap(aspace, data.base, 8 * len(data))
    assert maple_tlb.translate(data.addr(0)) is None
    assert soc.stats.get("maple0.shootdowns") >= 1


def test_speculative_prefetch_op_fills_llc():
    soc = build_soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    data = soc.array(aspace, [3.0] * 8, name="A")

    def program():
        yield from api.prefetch(data.addr(0))
        yield Alu(600)  # allow the prefetch to land
        value = yield Load(data.addr(0))
        assert value == 3.0

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    paddr = aspace.page_table.lookup(data.addr(0))
    line = paddr & ~(soc.config.line_size - 1)
    assert soc.stats.get("l2.prefetches") == 1
    # The demand load after the prefetch hits in L2, not DRAM.
    assert soc.stats.get("l2.hits") >= 1


def test_nearest_maple_instance_chosen():
    soc = build_soc(maple_instances=2, num_cores=2, mesh_cols=2, mesh_rows=2)
    # tiles: core0@0 (0,0), core1@1 (1,0), maple0@2 (0,1), maple1@3 (1,1)
    assert soc.driver.pick_instance(core_tile=0).instance_id == 0
    assert soc.driver.pick_instance(core_tile=1).instance_id == 1


def test_mesh_autogrows_for_many_tiles():
    soc = build_soc(num_cores=8, maple_instances=1)
    assert soc.config.mesh_cols * soc.config.mesh_rows >= 9
    assert len(soc.cores) == 8
