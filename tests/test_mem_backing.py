"""Unit tests for PhysicalMemory."""

import pytest
from hypothesis import given, strategies as st

from repro.mem import PhysicalMemory


def test_uninitialized_reads_zero():
    mem = PhysicalMemory()
    assert mem.read_word(0) == 0
    assert mem.read_word(0x1000) == 0


def test_write_then_read():
    mem = PhysicalMemory()
    mem.write_word(0x40, 3.25)
    mem.write_word(0x48, 7)
    assert mem.read_word(0x40) == 3.25
    assert mem.read_word(0x48) == 7


def test_unaligned_access_rejected():
    mem = PhysicalMemory()
    with pytest.raises(ValueError):
        mem.read_word(0x41)
    with pytest.raises(ValueError):
        mem.write_word(0x44, 1)


def test_negative_address_rejected():
    mem = PhysicalMemory()
    with pytest.raises(ValueError):
        mem.read_word(-8)


def test_read_line_returns_words_in_order():
    mem = PhysicalMemory()
    for i in range(8):
        mem.write_word(0x80 + 8 * i, i * 10)
    assert mem.read_line(0x80, 64) == [0, 10, 20, 30, 40, 50, 60, 70]


def test_read_line_requires_alignment():
    mem = PhysicalMemory()
    with pytest.raises(ValueError):
        mem.read_line(0x88, 64)


def test_read_line_fills_missing_words_with_zero():
    mem = PhysicalMemory()
    mem.write_word(0xC8, 5)
    line = mem.read_line(0xC0, 64)
    assert line == [0, 5, 0, 0, 0, 0, 0, 0]


def test_words_in_use():
    mem = PhysicalMemory()
    assert mem.words_in_use() == 0
    mem.write_word(0, 1)
    mem.write_word(8, 1)
    mem.write_word(0, 2)  # overwrite, not a new word
    assert mem.words_in_use() == 2


@given(st.dictionaries(
    st.integers(min_value=0, max_value=2**20).map(lambda w: w * 8),
    st.one_of(st.integers(), st.floats(allow_nan=False)),
    max_size=64,
))
def test_memory_behaves_like_a_dict(contents):
    mem = PhysicalMemory()
    for addr, value in contents.items():
        mem.write_word(addr, value)
    for addr, value in contents.items():
        assert mem.read_word(addr) == value
