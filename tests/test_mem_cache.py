"""Unit and property tests for the set-associative LRU cache."""

import pytest
from hypothesis import given, strategies as st

from repro.mem import Cache, LineState


LINE = 64


def L(n):
    """Line-id -> line-aligned byte address (the Cache API takes addresses)."""
    return n * LINE


def make_cache(size=1024, ways=4, line=64):
    return Cache(size, ways, line, name="t")


def test_geometry():
    cache = make_cache()
    assert cache.num_sets == 4
    with pytest.raises(ValueError):
        Cache(1000, 3, 64)


def test_miss_then_hit():
    cache = make_cache()
    assert not cache.lookup(L(0))
    cache.insert(L(0))
    assert cache.lookup(L(0))


def test_lru_eviction_order():
    cache = Cache(256, 4, 64)  # 1 set, 4 ways
    for n in [0, 1, 2, 3]:
        assert cache.insert(L(n)) is None
    victim = cache.insert(L(4))
    assert victim.line == L(0)  # least recently used
    # Touch 1 so 2 becomes LRU.
    cache.lookup(L(1))
    victim = cache.insert(L(5))
    assert victim.line == L(2)


def test_insert_existing_line_refreshes_lru():
    cache = Cache(256, 4, 64)
    for n in [0, 1, 2, 3]:
        cache.insert(L(n))
    cache.insert(L(0))  # refresh: now 1 is LRU
    victim = cache.insert(L(9))
    assert victim.line == L(1)


def test_mesi_state_lifecycle():
    cache = make_cache()
    cache.insert(L(4))
    assert cache.state_of(L(4)) is LineState.SHARED  # the default fill state
    cache.set_state(L(4), LineState.MODIFIED)
    assert cache.state_of(L(4)) is LineState.MODIFIED
    cache.set_state(L(4), LineState.SHARED)
    assert cache.state_of(L(4)) is LineState.SHARED


def test_insert_never_downgrades_resident_state():
    # Re-inserting a MODIFIED line with a weaker state must not lose the
    # dirty truth: the merge keeps the stronger of the two states.
    cache = make_cache()
    cache.insert(L(4), LineState.MODIFIED)
    cache.insert(L(4), LineState.SHARED)
    assert cache.state_of(L(4)) is LineState.MODIFIED
    # ...but a stronger re-insert does upgrade.
    cache.insert(L(5), LineState.SHARED)
    cache.insert(L(5), LineState.EXCLUSIVE)
    assert cache.state_of(L(5)) is LineState.EXCLUSIVE


def test_victim_reports_its_state():
    cache = Cache(256, 4, 64)
    for n in [0, 1, 2, 3]:
        cache.insert(L(n))
    cache.set_state(L(0), LineState.MODIFIED)
    victim = cache.insert(L(4))
    assert victim.line == L(0)
    assert victim.state is LineState.MODIFIED


def test_lru_victim_on_full_set_insert_keeps_set_full():
    # Satellite edge case: inserting into a full set evicts exactly one
    # line (the LRU) and leaves the set exactly full again.
    cache = Cache(256, 4, 64)  # 1 set, 4 ways
    for n in [0, 1, 2, 3]:
        cache.insert(L(n))
    assert cache.occupancy() == 4
    victim = cache.insert(L(4))
    assert victim is not None and victim.line == L(0)
    assert cache.occupancy() == 4
    assert not cache.contains(L(0)) and cache.contains(L(4))


def test_state_transitions_on_absent_line_raise():
    cache = make_cache()
    with pytest.raises(KeyError):
        cache.set_state(L(77), LineState.MODIFIED)
    assert cache.state_of(L(77)) is LineState.INVALID


def test_invalid_state_is_never_stored():
    cache = make_cache()
    with pytest.raises(ValueError):
        cache.insert(L(3), LineState.INVALID)
    cache.insert(L(3))
    with pytest.raises(ValueError):
        cache.set_state(L(3), LineState.INVALID)


def test_invalidate():
    cache = make_cache()
    cache.insert(L(8))
    # invalidate returns the dropped state (truthy for any valid state),
    # or None when the line was not resident.
    assert cache.invalidate(L(8)) is LineState.SHARED
    assert not cache.contains(L(8))
    assert cache.invalidate(L(8)) is None  # absent: a no-op, not an error


def test_flush_clears_states_and_occupancy():
    cache = make_cache()
    cache.insert(L(1))
    cache.insert(L(2), LineState.MODIFIED)
    cache.flush()
    assert cache.occupancy() == 0
    assert cache.state_of(L(2)) is LineState.INVALID
    # Re-inserting after a flush starts clean again.
    cache.insert(L(2))
    assert cache.state_of(L(2)) is LineState.SHARED


def test_resident_lines_matches_contains_and_states():
    cache = Cache(512, 2, 64)
    for n in [0, 1, 2, 3, 4, 5]:
        cache.insert(L(n), LineState.EXCLUSIVE if n % 2 else LineState.SHARED)
    resident = set(cache.resident_lines())
    assert len(resident) == cache.occupancy()
    for line in resident:
        assert cache.contains(line)
        assert cache.state_of(line) is not LineState.INVALID


def test_contains_does_not_touch_lru():
    cache = Cache(256, 4, 64)
    for n in [0, 1, 2, 3]:
        cache.insert(L(n))
    cache.contains(L(0))  # must NOT refresh
    victim = cache.insert(L(4))
    assert victim.line == L(0)


def test_set_indexing_uses_address_bits_above_offset():
    cache = Cache(512, 4, 64)  # 2 sets: even line ids -> set 0, odd -> set 1
    for n in [0, 2, 4, 6]:
        cache.insert(L(n))
    # Set 0 full; inserting odd lines must not evict from set 0.
    assert cache.insert(L(1)) is None
    assert cache.occupancy() == 5


def test_consecutive_line_addresses_spread_across_sets():
    # Regression for the set-indexing bug: line-aligned *addresses* must
    # not all collapse into one set.
    cache = Cache(8192, 4, 64)  # 32 sets
    for n in range(32):
        cache.insert(L(n))
    assert cache.occupancy() == 32
    sets_used = {(line >> 6) % cache.num_sets for line in cache.resident_lines()}
    assert len(sets_used) == 32


def test_flush():
    cache = make_cache()
    cache.insert(L(1))
    cache.insert(L(2))
    cache.flush()
    assert cache.occupancy() == 0


@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=500))
def test_occupancy_never_exceeds_capacity(line_ids):
    cache = Cache(512, 2, 64)  # 4 sets x 2 ways = 8 lines max
    for n in line_ids:
        cache.insert(L(n))
    assert cache.occupancy() <= 8
    per_set = {}
    for line in cache.resident_lines():
        per_set.setdefault((line >> 6) % cache.num_sets, []).append(line)
    for lines_in_set in per_set.values():
        assert len(lines_in_set) <= 2


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=300))
def test_most_recent_insert_always_resident(line_ids):
    cache = Cache(256, 4, 64)
    for n in line_ids:
        cache.insert(L(n))
        assert cache.contains(L(n))


@given(st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=30)),
                min_size=1, max_size=300))
def test_model_equivalence_with_reference_lru(ops):
    """The cache must match a simple reference LRU model per set."""
    cache = Cache(256, 4, 64)  # single set keeps the reference simple
    reference = []  # LRU order, least recent first
    for is_lookup, n in ops:
        line = L(n)
        if is_lookup:
            hit = cache.lookup(line)
            assert hit == (line in reference)
            if hit:
                reference.remove(line)
                reference.append(line)
        else:
            victim = cache.insert(line)
            if line in reference:
                assert victim is None
                reference.remove(line)
                reference.append(line)
            else:
                if len(reference) == 4:
                    assert victim is not None and victim.line == reference.pop(0)
                else:
                    assert victim is None
                reference.append(line)
