"""Edge cases and counter semantics of the memory substrate."""

import pytest

from repro.mem import MemorySystem
from repro.params import SoCConfig
from repro.sim import Simulator, Stats
from repro.vm.os_model import SimOS


def make_system(**overrides):
    cfg = SoCConfig().with_overrides(**overrides) if overrides else SoCConfig()
    sim = Simulator()
    stats = Stats()
    ms = MemorySystem(sim, cfg, stats)
    for core in range(2):
        ms.add_core(core)
    return sim, ms, stats


def drive(sim, gen):
    box = {}

    def wrapper():
        box["v"] = yield from gen

    sim.spawn(wrapper())
    sim.run()
    return box.get("v")


def test_duplicate_core_rejected():
    _, ms, _ = make_system()
    with pytest.raises(ValueError, match="already"):
        ms.add_core(0)


def test_dirty_eviction_counts_writeback():
    sim, ms, stats = make_system()
    cfg = ms.config
    sets = cfg.l1_size // (cfg.l1_ways * cfg.line_size)
    stride = cfg.line_size * sets

    def program():
        yield from ms.store(0, 0x100000, 1)  # dirty line
        for i in range(1, cfg.l1_ways + 1):  # evict it
            yield from ms.load(0, 0x100000 + i * stride)

    sim.spawn(program())
    sim.run()
    assert stats.get("l1.0.writebacks") == 1


def test_l2_dirty_writeback_counted_on_eviction():
    sim, ms, stats = make_system()
    cfg = ms.config
    l2_sets = cfg.l2_size // (cfg.l2_ways * cfg.line_size)
    stride = cfg.line_size * l2_sets

    def program():
        yield from ms.store(0, 0x200000, 1)
        # Force the dirty line out of the inclusive L2. The L1 copy is
        # dirty; the recall must count an L2-side writeback.
        for i in range(1, cfg.l2_ways + 1):
            yield from ms.load(1, 0x200000 + i * stride)

    sim.spawn(program())
    sim.run()
    assert stats.get("coherence.recalls") >= 1


def test_dram_read_write_counters():
    sim, ms, stats = make_system()

    def program():
        yield from ms.dram.access(0x1000)
        yield from ms.dram.access(0x2000, write=True)

    sim.spawn(program())
    sim.run()
    assert stats.get("dram.reads") == 1
    assert stats.get("dram.writes") == 1


def test_dram_latency_validation():
    from repro.mem.dram import DramChannel
    sim = Simulator()
    with pytest.raises(ValueError):
        DramChannel(sim, 0, 4, Stats().scoped("d"))


def test_mmio_is_uncached():
    sim, ms, _ = make_system()
    log = []

    def handler(op, paddr, value, core_id):
        log.append(op)
        yield 3
        return 1

    from repro.mem import MMIORegion
    ms.register_mmio(MMIORegion(1 << 40, (1 << 40) + 4096, handler))
    drive(sim, ms.load(0, 1 << 40))
    drive(sim, ms.load(0, 1 << 40))
    assert log == ["load", "load"]  # never served from a cache
    assert ms.is_mmio(1 << 40)
    assert not ms.is_mmio(0x1000)


def test_store_timing_only_mode_does_not_write():
    sim, ms, _ = make_system()
    ms.mem.write_word(0x3000, 7)
    drive(sim, ms.store(0, 0x3000, 99, apply=False))
    assert ms.mem.read_word(0x3000) == 7  # timing-only pass left data alone


def test_l1_would_hit_peek_does_not_disturb_lru():
    sim, ms, _ = make_system()
    drive(sim, ms.load(0, 0x4000))
    assert ms.l1_would_hit(0, 0x4000)
    assert not ms.l1_would_hit(0, 0x8000)


def test_prefetch_l2_on_complete_callback():
    sim, ms, _ = make_system()
    done = []
    ms.prefetch_l2(0x5000, on_complete=lambda: done.append(True))
    sim.run()
    assert done == [True]
    # Already-resident line: callback still fires, no second fill.
    ms.prefetch_l2(0x5000, on_complete=lambda: done.append(True))
    sim.run()
    assert done == [True, True]


def test_l2_fill_listener_sees_prefetch_flag():
    sim, ms, _ = make_system()
    events = []
    ms.l2_fill_listeners.append(lambda line, pf: events.append((line, pf)))
    ms.prefetch_l2(0x6000)
    sim.run()
    drive(sim, ms.load(0, 0x7000))
    assert (0x6000, True) in events
    assert (0x7000 & ~63, False) in events


def test_os_mmap_size_validation():
    sim, ms, _ = make_system()
    os = SimOS(sim, ms, ms.config)
    aspace = os.create_address_space()
    with pytest.raises(ValueError):
        os.mmap(aspace, 0)
