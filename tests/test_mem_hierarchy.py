"""Integration tests for the coherent memory hierarchy timing model."""

import pytest

from repro.mem import LineState, MemorySystem, MMIORegion
from repro.params import SoCConfig
from repro.sim import Simulator, Stats


def make_system(num_cores=2, **overrides):
    cfg = SoCConfig().with_overrides(**overrides) if overrides else SoCConfig()
    sim = Simulator()
    stats = Stats()
    ms = MemorySystem(sim, cfg, stats)
    for core in range(num_cores):
        ms.add_core(core)
    return sim, ms, stats


def run_access(sim, gen):
    """Drive one access generator to completion, returning (value, cycles)."""
    start = sim.now
    box = {}

    def wrapper():
        box["value"] = yield from gen
        box["end"] = sim.now

    sim.spawn(wrapper())
    sim.run()
    return box["value"], box["end"] - start


def test_cold_load_pays_l1_l2_dram():
    sim, ms, stats = make_system()
    ms.mem.write_word(0x1000, 42)
    value, cycles = run_access(sim, ms.load(0, 0x1000))
    assert value == 42
    cfg = ms.config
    # L1 lookup + L2 lookup + DRAM.
    assert cycles == cfg.l1_latency + cfg.l2_latency + cfg.dram_latency
    assert stats.get("l1.0.misses") == 1
    assert stats.get("l2.misses") == 1


def test_warm_load_hits_l1():
    sim, ms, stats = make_system()
    run_access(sim, ms.load(0, 0x1000))
    value, cycles = run_access(sim, ms.load(0, 0x1000))
    assert cycles == ms.config.l1_latency
    assert stats.get("l1.0.hits") == 1


def test_l2_hit_after_other_core_fetch():
    sim, ms, stats = make_system()
    run_access(sim, ms.load(0, 0x2000))
    _, cycles = run_access(sim, ms.load(1, 0x2000))
    cfg = ms.config
    assert cycles == cfg.l1_latency + cfg.l2_latency  # L2 hit, no DRAM
    assert stats.get("l2.hits") == 1


def test_same_line_words_share_a_fill():
    sim, ms, stats = make_system()
    run_access(sim, ms.load(0, 0x3000))
    _, cycles = run_access(sim, ms.load(0, 0x3008))  # same 64B line
    assert cycles == ms.config.l1_latency


def test_store_then_load_roundtrip_value():
    sim, ms, _ = make_system()
    run_access(sim, ms.store(0, 0x4000, 3.5))
    value, _ = run_access(sim, ms.load(0, 0x4000))
    assert value == 3.5


def test_store_marks_line_dirty():
    sim, ms, _ = make_system()
    run_access(sim, ms.store(0, 0x4000, 1))
    line = 0x4000 & ~63
    assert ms.l1s[0].state_of(line) is LineState.MODIFIED


def test_store_invalidates_other_sharers():
    sim, ms, stats = make_system()
    run_access(sim, ms.load(0, 0x5000))
    run_access(sim, ms.load(1, 0x5000))
    line = 0x5000 & ~63
    assert ms.l1s[0].contains(line) and ms.l1s[1].contains(line)
    _, cycles = run_access(sim, ms.store(0, 0x5000, 9))
    assert not ms.l1s[1].contains(line)
    assert stats.get("coherence.invalidations") == 1
    # Upgrade pays an extra L2 round trip on top of the L1 hit.
    assert cycles == ms.config.l1_latency + ms.config.l2_latency


def test_load_of_remotely_dirty_line_pays_forwarding():
    sim, ms, stats = make_system()
    run_access(sim, ms.store(0, 0x6000, 7))
    value, cycles = run_access(sim, ms.load(1, 0x6000))
    assert value == 7
    assert stats.get("coherence.forwards") == 1
    line = 0x6000 & ~63
    assert ms.l1s[0].state_of(line) is LineState.SHARED  # downgraded
    cfg = ms.config
    # forwarding round trip + L2 hit path
    assert cycles == cfg.l1_latency + 2 * cfg.l2_latency


def test_ping_pong_costs_more_than_private_traffic():
    """The shared-memory decoupling queue pattern: alternating writer/reader."""
    sim, ms, _ = make_system()

    total = {}

    def ping_pong():
        start = sim.now
        for i in range(8):
            yield from ms.store(0, 0x7000, i)
            yield from ms.load(1, 0x7000)
        total["pp"] = sim.now - start

    sim.spawn(ping_pong())
    sim.run()

    sim2, ms2, _ = make_system()

    def private():
        start = sim2.now
        for i in range(8):
            yield from ms2.store(0, 0x7000, i)
            yield from ms2.load(0, 0x7000)
        total["priv"] = sim2.now - start

    sim2.spawn(private())
    sim2.run()
    assert total["pp"] > 2 * total["priv"]


def test_inflight_l2_misses_merge():
    sim, ms, stats = make_system()
    done = []

    def loader(core, delay):
        yield delay
        yield from ms.load(core, 0x8000)
        done.append(sim.now)

    sim.spawn(loader(0, 0))
    sim.spawn(loader(1, 5))  # arrives while the first fill is in flight
    sim.run()
    assert stats.get("l2.misses") == 1
    assert stats.get("l2.merged_misses") == 1
    assert stats.get("dram.reads") == 1


def test_l1_thrashing_evicts_lru_lines():
    # 8KB 4-way, 64B lines -> 32 sets; 33 lines mapping to the same set
    # cannot all be resident.
    sim, ms, stats = make_system()
    cfg = ms.config
    stride = cfg.line_size * (cfg.l1_size // (cfg.l1_ways * cfg.line_size))

    def loads():
        for i in range(5):
            yield from ms.load(0, 0x10000 + i * stride)
        # First line was evicted (4 ways); reloading misses again.
        yield from ms.load(0, 0x10000)

    sim.spawn(loads())
    sim.run()
    assert stats.get("l1.0.misses") == 6


def test_prefetch_l1_makes_later_load_hit():
    sim, ms, stats = make_system()
    ms.prefetch_l1(0, 0x9000)
    sim.run()

    _, cycles = run_access(sim, ms.load(0, 0x9000))
    assert cycles == ms.config.l1_latency
    assert stats.get("l1.0.prefetches") == 1


def test_demand_load_merges_with_inflight_prefetch():
    sim, ms, stats = make_system()
    done = {}

    def demand():
        yield 10  # prefetch already in flight
        yield from ms.load(0, 0xA000)
        done["t"] = sim.now

    ms.prefetch_l1(0, 0xA000)
    sim.spawn(demand())
    sim.run()
    assert stats.get("dram.reads") == 1
    # The demand load completes when the prefetch fill lands, not a full
    # miss later.
    cfg = ms.config
    full_miss = cfg.l1_latency + cfg.l2_latency + cfg.dram_latency
    assert done["t"] < 10 + full_miss


def test_prefetch_l2_fills_only_l2():
    sim, ms, _ = make_system()
    ms.prefetch_l2(0xB000)
    sim.run()
    line = 0xB000 & ~63
    assert ms.l2.contains(line)
    assert not ms.l1s[0].contains(line)
    _, cycles = run_access(sim, ms.load(0, 0xB000))
    assert cycles == ms.config.l1_latency + ms.config.l2_latency


def test_l2_eviction_recalls_l1_copies():
    sim, ms, stats = make_system()
    cfg = ms.config
    l2_sets = cfg.l2_size // (cfg.l2_ways * cfg.line_size)
    stride = cfg.line_size * l2_sets

    def fill():
        yield from ms.load(0, 0x0)
        # Fill the same L2 set until 0x0's line is evicted.
        for i in range(1, cfg.l2_ways + 1):
            yield from ms.load(1, i * stride)

    sim.spawn(fill())
    sim.run()
    assert not ms.l1s[0].contains(0)  # inclusion enforced
    assert stats.get("coherence.recalls") >= 1


def test_amo_returns_old_value_and_is_atomic():
    sim, ms, _ = make_system()

    def bump(core):
        for _ in range(10):
            yield from ms.amo(core, 0xC000, lambda v: v + 1)

    sim.spawn(bump(0))
    sim.spawn(bump(1))
    sim.run()
    assert ms.mem.read_word(0xC000) == 20


def test_mmio_region_dispatch():
    sim, ms, _ = make_system()
    log = []

    def handler(op, paddr, value, core_id):
        yield 7
        log.append((op, paddr, value, core_id))
        return 123 if op == "load" else None

    ms.register_mmio(MMIORegion(1 << 40, (1 << 40) + 4096, handler, name="dev"))
    value, cycles = run_access(sim, ms.load(0, (1 << 40) + 8))
    assert value == 123
    assert cycles == 7
    run_access(sim, ms.store(1, (1 << 40) + 16, 55))
    assert log == [
        ("load", (1 << 40) + 8, None, 0),
        ("store", (1 << 40) + 16, 55, 1),
    ]


def test_mmio_overlap_rejected():
    sim, ms, _ = make_system()

    def handler(op, paddr, value, core_id):
        yield 1

    ms.register_mmio(MMIORegion(1 << 40, (1 << 40) + 4096, handler))
    with pytest.raises(ValueError):
        ms.register_mmio(MMIORegion((1 << 40) + 100, (1 << 40) + 200, handler))


def test_device_load_paths():
    sim, ms, stats = make_system()
    ms.mem.write_word(0xD000, 5)
    value, cycles = run_access(sim, ms.load_dram(0xD000))
    assert value == 5
    assert cycles == ms.config.dram_latency
    # LLC path: first access misses to DRAM, second hits at L2 latency.
    run_access(sim, ms.load_llc(0xD040))
    _, cycles = run_access(sim, ms.load_llc(0xD040))
    assert cycles == ms.config.l2_latency


def test_load_dram_line_returns_words():
    sim, ms, _ = make_system()
    for i in range(8):
        ms.mem.write_word(0xE000 + 8 * i, i)
    line, cycles = run_access(sim, ms.load_dram_line(0xE000))
    assert line == list(range(8))
    assert cycles == ms.config.dram_latency


def test_dram_concurrency_bound():
    sim, ms, stats = make_system(dram_max_inflight=2)
    times = []

    def loader(i):
        yield from ms.load_dram(0x10000 + i * 64)
        times.append(sim.now)

    for i in range(4):
        sim.spawn(loader(i))
    sim.run()
    lat = ms.config.dram_latency
    assert sorted(times) == [lat, lat, 2 * lat, 2 * lat]
