"""Unit and property tests for the NoC substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.noc import Mesh, Network, Packet, Plane
from repro.noc.routing import hop_count, xy_route
from repro.params import SoCConfig
from repro.sim import Simulator, Stats


# -- routing -----------------------------------------------------------------

def test_xy_route_simple_path():
    assert xy_route((0, 0), (2, 1)) == [(1, 0), (2, 0), (2, 1)]


def test_xy_route_same_tile_is_empty():
    assert xy_route((1, 1), (1, 1)) == []


def test_xy_route_negative_direction():
    assert xy_route((2, 2), (0, 1)) == [(1, 2), (0, 2), (0, 1)]


def test_xy_route_resolves_x_before_y():
    path = xy_route((0, 0), (3, 3))
    xs = [x for x, _ in path]
    # X coordinate must be fully resolved before Y moves.
    assert xs[:3] == [1, 2, 3]
    assert all(x == 3 for x, _ in path[3:])


coords = st.tuples(st.integers(min_value=0, max_value=7),
                   st.integers(min_value=0, max_value=7))


@given(coords, coords)
def test_route_length_is_manhattan_distance(src, dst):
    assert len(xy_route(src, dst)) == hop_count(src, dst)


@given(coords, coords)
def test_route_ends_at_destination(src, dst):
    path = xy_route(src, dst)
    if src == dst:
        assert path == []
    else:
        assert path[-1] == dst


@given(coords, coords)
def test_route_steps_are_unit_hops(src, dst):
    path = [src] + xy_route(src, dst)
    for a, b in zip(path, path[1:]):
        assert hop_count(a, b) == 1


# -- mesh ----------------------------------------------------------------------

def test_mesh_row_major_coordinates():
    mesh = Mesh(3, 2)
    assert mesh.coord_of(0) == (0, 0)
    assert mesh.coord_of(2) == (2, 0)
    assert mesh.coord_of(3) == (0, 1)
    assert mesh.size == 6


def test_mesh_tile_at_inverse_of_coord_of():
    mesh = Mesh(4, 4)
    for tile_id in range(mesh.size):
        assert mesh.tile_at(mesh.coord_of(tile_id)).tile_id == tile_id


def test_mesh_tile_at_out_of_range():
    mesh = Mesh(2, 2)
    with pytest.raises(KeyError):
        mesh.tile_at((2, 0))


def test_mesh_placement_and_find():
    mesh = Mesh(2, 2)
    mesh.place(0, "core0")
    mesh.place(1, "maple0")
    assert mesh.find("maple0") == 1
    with pytest.raises(ValueError):
        mesh.place(0, "core1")
    with pytest.raises(KeyError):
        mesh.find("missing")


def test_mesh_nearest_prefers_fewest_hops():
    mesh = Mesh(4, 1)
    mesh.place(0, "core0")
    mesh.place(1, "maple0")
    mesh.place(3, "maple1")
    assert mesh.nearest(0, "maple") == 1
    assert mesh.nearest(3, "maple") == 3


def test_mesh_nearest_tie_breaks_on_tile_id():
    mesh = Mesh(3, 1)
    mesh.place(0, "maple0")
    mesh.place(2, "maple1")
    assert mesh.nearest(1, "maple") == 0


def test_mesh_validation():
    with pytest.raises(ValueError):
        Mesh(0, 3)


# -- network ---------------------------------------------------------------------

def make_network(cols=2, rows=2, **overrides):
    cfg = SoCConfig().with_overrides(mesh_cols=cols, mesh_rows=rows, **overrides)
    sim = Simulator()
    stats = Stats()
    mesh = Mesh(cols, rows)
    return sim, Network(sim, mesh, cfg, stats), stats


def test_one_way_latency_formula():
    sim, net, _ = make_network()
    cfg = net.config
    # tile 0 (0,0) -> tile 3 (1,1): 2 hops
    assert net.one_way_latency(0, 3) == (
        cfg.noc_encode_latency + 2 * cfg.hop_latency + cfg.noc_decode_latency
    )


def test_round_trip_is_symmetric_sum():
    _, net, _ = make_network()
    assert net.round_trip_latency(0, 3) == 2 * net.one_way_latency(0, 3)


def test_transfer_charges_latency_and_counts():
    sim, net, stats = make_network()
    done = {}

    def proc():
        yield from net.transfer(Packet(0, 3, "mmio_load"), Plane.REQUEST)
        done["t"] = sim.now

    sim.spawn(proc())
    sim.run()
    assert done["t"] == net.one_way_latency(0, 3)
    assert stats.get("noc.request.packets") == 1
    assert stats.get("noc.request.hops") == 2


def test_hop_latency_override_for_sensitivity_sweep():
    sim, net, _ = make_network()
    cfg = SoCConfig().with_overrides(mesh_cols=2, mesh_rows=2)
    slow = Network(sim, net.mesh, cfg, Stats(), hop_latency_override=10)
    assert slow.one_way_latency(0, 3) > net.one_way_latency(0, 3)


def test_route_memoization_is_consistent_and_per_instance():
    # one_way_latency memoizes (src, dst) routes; repeated queries must
    # return the cached value unchanged and populate the cache once.
    _, net, _ = make_network()
    first = net.one_way_latency(0, 3)
    assert net.one_way_latency(0, 3) == first
    assert net._route_cache[(0, 3)][0] == first

    # The cache must be per-Network: a second fabric over the same mesh
    # starts cold and fills with its own entries.
    cfg = SoCConfig().with_overrides(mesh_cols=2, mesh_rows=2)
    other = Network(Simulator(), net.mesh, cfg, Stats())
    assert (0, 3) not in other._route_cache
    assert other.one_way_latency(0, 3) == first


def test_route_cache_never_leaks_across_hop_latency_overrides():
    # The Fig. 15 sweep builds one Network per hop-latency point over a
    # shared mesh; memoized routes must reflect each Network's own hop
    # latency, never a previously-built sweep point's.
    cfg = SoCConfig().with_overrides(mesh_cols=2, mesh_rows=2)
    mesh = Mesh(2, 2)
    sweep = {
        override: Network(Simulator(), mesh, cfg, Stats(),
                          hop_latency_override=override)
        for override in (1, 4, 16)
    }
    # Warm every cache, then re-query in a different order: each Network
    # must keep answering with its own override.
    expected = {
        override: cfg.noc_encode_latency + 2 * override + cfg.noc_decode_latency
        for override in sweep
    }
    for override, net in sweep.items():
        assert net.one_way_latency(0, 3) == expected[override]
    for override in (16, 1, 4):
        assert sweep[override].one_way_latency(0, 3) == expected[override]
        assert sweep[override].one_way_latency(3, 0) == expected[override]


def test_planes_tracked_independently():
    sim, net, stats = make_network()

    def proc():
        yield from net.transfer(Packet(0, 1, "req"), Plane.REQUEST)
        yield from net.transfer(Packet(1, 0, "resp"), Plane.RESPONSE)
        yield from net.transfer(Packet(1, 2, "mem"), Plane.MEMORY)

    sim.spawn(proc())
    sim.run()
    assert stats.get("noc.request.packets") == 1
    assert stats.get("noc.response.packets") == 1
    assert stats.get("noc.memory.packets") == 1
