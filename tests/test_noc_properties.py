"""Property tests for XY routing and NoC latency arithmetic.

Hypothesis drives mesh shape (2x2 through 4x4) and the three latency
knobs; every tile pair is then checked exhaustively: hop counts are
symmetric Manhattan distances, the XY route visits exactly that many
routers, and ``one_way_latency`` equals the encode + hops * hop + decode
budget the paper's Fig. 14/15 breakdowns are built from.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import Mesh, Network
from repro.noc.routing import hop_count, xy_route
from repro.params import SoCConfig
from repro.sim import Simulator, Stats

dims = st.integers(min_value=2, max_value=4)
lats = st.integers(min_value=0, max_value=7)


def make_network(cols, rows, hop, encode, decode):
    config = SoCConfig().with_overrides(
        mesh_cols=cols, mesh_rows=rows, hop_latency=hop,
        noc_encode_latency=encode, noc_decode_latency=decode)
    mesh = Mesh(cols, rows)
    return mesh, Network(Simulator(), mesh, config, Stats())


@settings(deadline=None)
@given(cols=dims, rows=dims)
def test_hop_counts_symmetric_and_match_route_length(cols, rows):
    mesh = Mesh(cols, rows)
    for src in range(mesh.size):
        for dst in range(mesh.size):
            a, b = mesh.coord_of(src), mesh.coord_of(dst)
            hops = mesh.hops(src, dst)
            assert hops == hop_count(a, b) == hop_count(b, a)
            assert hops == mesh.hops(dst, src)
            assert hops == abs(a[0] - b[0]) + abs(a[1] - b[1])
            route = xy_route(a, b)
            assert len(route) == hops
            if hops:
                assert route[-1] == b
            # Each step moves exactly one link.
            previous = a
            for step in route:
                assert hop_count(previous, step) == 1
                previous = step


@settings(deadline=None, max_examples=40)
@given(cols=dims, rows=dims, hop=lats, encode=lats, decode=lats)
def test_one_way_latency_matches_hop_budget(cols, rows, hop, encode, decode):
    mesh, network = make_network(cols, rows, hop, encode, decode)
    for src in range(mesh.size):
        for dst in range(mesh.size):
            expected = encode + mesh.hops(src, dst) * hop + decode
            assert network.one_way_latency(src, dst) == expected
            assert (network.one_way_latency(src, dst)
                    == network.one_way_latency(dst, src))
            assert (network.round_trip_latency(src, dst)
                    == 2 * network.one_way_latency(src, dst))


@settings(deadline=None, max_examples=20)
@given(cols=dims, rows=dims, hop=lats)
def test_hop_latency_override_wins(cols, rows, hop):
    config = SoCConfig().with_overrides(mesh_cols=cols, mesh_rows=rows)
    mesh = Mesh(cols, rows)
    network = Network(Simulator(), mesh, config, Stats(),
                      hop_latency_override=hop)
    for src in range(mesh.size):
        for dst in range(mesh.size):
            expected = (config.noc_encode_latency + mesh.hops(src, dst) * hop
                        + config.noc_decode_latency)
            assert network.one_way_latency(src, dst) == expected
