"""The parallel experiment orchestrator: sharding changes nothing.

The load-bearing guarantee is *parallel equals serial*: a figure-sized
workload set run at ``jobs=1`` and ``jobs=4`` must render byte-identical
text and produce identical per-run stats dumps — covering the cache
hit/miss and retry-after-injected-timeout paths along the way.  The
rest of the suite pins the orchestration mechanics: stable spec keys,
submission-order aggregation, in-batch dedup, cache robustness against
corrupt files, and the structured progress/timing report.
"""

import json

import pytest

from repro.harness.figures import fig15, queue_sweep
from repro.harness.orchestrator import (
    CACHE_SCHEMA,
    DiskCache,
    Orchestrator,
    RunSpec,
    execute_spec,
    freeze_dataset_kwargs,
    make_orchestrator,
    spec_key,
)
from repro.params import FPGA_CONFIG, MOSAIC_CONFIG

#: A cheap mixed bag: shared baselines (dedup), decoupling, prefetching.
SMALL_SPECS = (
    RunSpec("spmv", "doall", threads=2),
    RunSpec("spmv", "maple-decouple", threads=2),
    RunSpec("spmv", "doall", threads=2),          # duplicate of [0]
    RunSpec("spmv", "lima", threads=1),
    RunSpec("sdhp", "doall", threads=2),
)


def identities(results):
    return [r.identity() for r in results]


# -- spec keys --------------------------------------------------------------------


def test_spec_key_is_stable_and_collision_sensitive():
    a = RunSpec("spmv", "doall", threads=2)
    assert spec_key(a) == spec_key(RunSpec("spmv", "doall", threads=2))
    # Any knob change — spec-level or config-level — must change the key.
    assert spec_key(a) != spec_key(RunSpec("spmv", "doall", threads=4))
    assert spec_key(a) != spec_key(RunSpec("spmv", "lima", threads=2))
    assert spec_key(a) != spec_key(
        RunSpec("spmv", "doall", threads=2, config=FPGA_CONFIG))
    assert spec_key(RunSpec("spmv", "doall", config=FPGA_CONFIG)) != spec_key(
        RunSpec("spmv", "doall", config=MOSAIC_CONFIG))
    assert spec_key(RunSpec("spmv", "doall", config=FPGA_CONFIG)) != spec_key(
        RunSpec("spmv", "doall",
                config=FPGA_CONFIG.with_overrides(hop_latency=2)))
    assert spec_key(a) != spec_key(
        RunSpec("spmv", "doall", threads=2,
                dataset_kwargs=freeze_dataset_kwargs({"kind": "kronecker"})))


def test_config_name_participates_via_stable_dict():
    # stable_dict covers every dataclass field, in particular the knobs
    # sweeps override; sanity-check a couple.
    d = FPGA_CONFIG.stable_dict()
    assert d["scratchpad_bytes"] == 1024 and d["hop_latency"] == 1
    assert FPGA_CONFIG.stable_hash() != MOSAIC_CONFIG.stable_hash()
    assert FPGA_CONFIG.stable_hash() == FPGA_CONFIG.with_overrides().stable_hash()


def test_freeze_dataset_kwargs_is_order_insensitive():
    assert (freeze_dataset_kwargs({"a": 1, "b": 2})
            == freeze_dataset_kwargs({"b": 2, "a": 1}))
    assert freeze_dataset_kwargs(None) == ()


# -- serial/parallel equivalence ----------------------------------------------------


def test_parallel_equals_serial_on_spec_batch():
    serial = Orchestrator(jobs=1).run(SMALL_SPECS)
    parallel = Orchestrator(jobs=4, timeout=120).run(SMALL_SPECS)
    assert identities(serial) == identities(parallel)


def test_parallel_equals_serial_on_figure_workload(tmp_path):
    """A figure-sized set at jobs=1 vs jobs=4: byte-identical rendering,
    identical per-run stats, and the cache hit path on a third pass."""
    apps = ("spmv",)
    serial_orch = Orchestrator(jobs=1)
    serial = fig15(apps=apps, orch=serial_orch).render()

    cache = DiskCache(tmp_path / "cache")
    parallel_orch = Orchestrator(jobs=4, cache=cache, timeout=120)
    parallel = fig15(apps=apps, orch=parallel_orch).render()
    assert serial == parallel  # byte-identical figure text
    assert parallel_orch.report["executed"] == parallel_orch.report["unique"]

    cached_orch = Orchestrator(jobs=4, cache=cache, timeout=120)
    rerendered = fig15(apps=apps, orch=cached_orch).render()
    assert rerendered == serial
    assert cached_orch.report["executed"] == 0  # every cell from cache
    assert cached_orch.report["cached"] == cached_orch.report["unique"]


def test_queue_sweep_parallel_matches_serial():
    apps = ("spmv",)
    entries = (8, 32)
    serial = queue_sweep(apps=apps, entries=entries).render()
    parallel = queue_sweep(apps=apps, entries=entries,
                           orch=Orchestrator(jobs=2, timeout=120)).render()
    assert serial == parallel


def test_submission_order_preserved_and_duplicates_deduped():
    orch = Orchestrator(jobs=1)
    results = orch.run(SMALL_SPECS)
    assert [r.technique for r in results] == [
        "doall", "maple-decouple", "doall", "lima", "doall"]
    assert [r.workload for r in results] == [
        "spmv", "spmv", "spmv", "spmv", "sdhp"]
    # Duplicate spec simulated once, result fanned out.
    assert orch.report["total"] == 5
    assert orch.report["unique"] == 4
    assert results[0].identity() == results[2].identity()


# -- determinism of the worker entry point ------------------------------------------


def test_execute_spec_is_deterministic():
    spec = RunSpec("spmv", "maple-decouple", threads=2)
    a, b = execute_spec(spec), execute_spec(spec)
    assert a.identity() == b.identity()
    assert a.key == spec_key(spec)
    assert a.cycles > 0 and a.total_loads > 0 and a.events_executed > 0
    assert a.stats  # the full dump crossed the boundary


# -- cache ---------------------------------------------------------------------------


def test_cache_roundtrip_hit_and_miss(tmp_path):
    cache = DiskCache(tmp_path)
    spec = RunSpec("spmv", "doall", threads=2)
    key = spec_key(spec)
    assert cache.get(key) is None  # miss

    result = execute_spec(spec)
    cache.put(key, result)
    assert len(cache) == 1
    hit = cache.get(key)
    assert hit is not None and hit.from_cache
    assert hit.identity() == result.identity()


def test_cache_ignores_corrupt_and_stale_schema_files(tmp_path):
    cache = DiskCache(tmp_path)
    spec = RunSpec("spmv", "doall", threads=2)
    key = spec_key(spec)

    (tmp_path / f"{key}.json").write_text("{not json")
    assert cache.get(key) is None

    payload = execute_spec(spec).to_json()
    payload["schema"] = CACHE_SCHEMA + 1
    (tmp_path / f"{key}.json").write_text(json.dumps(payload))
    assert cache.get(key) is None

    # A corrupt entry self-heals: the orchestrator re-simulates and
    # overwrites it.
    orch = Orchestrator(jobs=1, cache=cache)
    results = orch.run([spec])
    assert not results[0].from_cache
    rerun = orch.run([spec])
    assert rerun[0].from_cache
    assert rerun[0].identity() == results[0].identity()


def test_cached_result_render_path_matches_fresh(tmp_path):
    """Figure values computed from cached results equal fresh ones even
    through the JSON float round trip."""
    cache = DiskCache(tmp_path)
    fresh = fig15(apps=("spmv",), targets=(25,),
                  orch=Orchestrator(jobs=1, cache=cache)).render()
    cached = fig15(apps=("spmv",), targets=(25,),
                   orch=Orchestrator(jobs=1, cache=cache)).render()
    assert fresh == cached


# -- timeout / retry ------------------------------------------------------------------


def test_retry_after_injected_timeout_recovers_identical_result():
    specs = [RunSpec("spmv", "doall", threads=2),
             RunSpec("spmv", "maple-decouple", threads=2)]
    baseline = identities(Orchestrator(jobs=1).run(specs))

    events = []
    orch = Orchestrator(jobs=2, timeout=2.0, retries=2,
                        inject_hang=frozenset({spec_key(specs[0])}),
                        progress=events.append)
    results = orch.run(specs)
    assert identities(results) == baseline
    # The injected hang guarantees at least one timeout+retry; a loaded
    # host may add more (the non-hung cell can also miss its deadline),
    # and the injection only fires on attempt 0, so retries always land.
    assert orch.report["timeouts"] >= 1
    assert orch.report["retries"] >= 1
    assert results[0].attempts >= 2  # first attempt hung, retry landed
    assert any(e["event"] == "timeout" for e in events)


def test_exhausted_retries_fall_back_to_in_process():
    spec = RunSpec("spmv", "doall", threads=2)
    orch = Orchestrator(jobs=2, timeout=2.0, retries=0,
                        inject_hang=frozenset({spec_key(spec)}))
    results = orch.run([spec])
    assert orch.report["timeouts"] >= 1
    assert orch.report["retries"] == 0
    assert results[0].identity() == execute_spec(spec).identity()


# -- progress / reporting --------------------------------------------------------------


def test_progress_events_and_timing_report():
    events = []
    orch = Orchestrator(jobs=1, progress=events.append)
    orch.run(SMALL_SPECS)
    kinds = [e["event"] for e in events]
    assert kinds[0] == "start" and kinds[-1] == "finish"
    assert kinds.count("done") == 4  # unique cells only

    report = orch.report
    assert report["total"] == 5 and report["unique"] == 4
    assert report["wall_seconds"] > 0
    assert len(report["per_job"]) == 5
    assert all(job["wall_seconds"] >= 0 for job in report["per_job"])


def test_constructor_validation():
    with pytest.raises(ValueError):
        Orchestrator(jobs=0)
    with pytest.raises(ValueError):
        Orchestrator(retries=-1)


def test_make_orchestrator_wires_cache(tmp_path):
    orch = make_orchestrator(jobs=2, use_cache=True, cache_dir=tmp_path)
    assert orch.cache is not None and orch.cache.root == tmp_path
    assert make_orchestrator(jobs=1, use_cache=False).cache is None


# -- structured failures, retries, and backoff -----------------------------------


def _bad_spec():
    """A spec that fails deterministically inside run_workload."""
    return RunSpec("spmv", "no-such-technique", threads=1)


def test_serial_failure_is_structured():
    from repro.harness.orchestrator import JobError, OrchestratorError

    events = []
    orch = Orchestrator(jobs=1, progress=events.append)
    with pytest.raises(OrchestratorError) as exc:
        orch.run([_bad_spec()])
    error = exc.value.job_error
    assert isinstance(error, JobError)
    assert error.label == _bad_spec().label()
    assert error.exc_type == "ValueError"
    assert "no-such-technique" in error.message
    assert "run_workload" in error.traceback  # full worker traceback rides along
    assert "worker traceback" in str(exc.value)
    assert orch.failures == [error]
    failures = [e for e in events if e["event"] == "failure"]
    assert failures and failures[0]["exc_type"] == "ValueError"


def test_pool_failure_crosses_the_process_boundary():
    import os

    from repro.harness.orchestrator import OrchestratorError

    orch = Orchestrator(jobs=2, timeout=120, retries=0)
    with pytest.raises(OrchestratorError) as exc:
        orch.run([RunSpec("spmv", "doall", threads=1), _bad_spec()])
    error = exc.value.job_error
    # The record was built inside the worker process, not re-raised as a
    # bare remote traceback.
    assert error.worker_pid != 0 and error.worker_pid != os.getpid()
    assert error.exc_type == "ValueError"
    assert "no-such-technique" in error.traceback
    assert orch.failures[-1] is error


def test_failed_cell_retries_with_exponential_backoff(monkeypatch):
    import repro.harness.orchestrator as orch_module
    from repro.harness.orchestrator import OrchestratorError

    sleeps = []
    monkeypatch.setattr(orch_module.time, "sleep",
                        lambda seconds: sleeps.append(seconds))
    events = []
    orch = Orchestrator(jobs=2, timeout=120, retries=2, backoff=0.5,
                        progress=events.append)
    with pytest.raises(OrchestratorError) as exc:
        orch.run([_bad_spec()])
    # Three attempts total (1 + 2 retries), exponential pauses between.
    assert sleeps == [0.5, 1.0]
    assert [e["attempt"] for e in events if e["event"] == "failure"] == [1, 2, 3]
    assert len(orch.failures) == 3
    assert exc.value.job_error is orch.failures[-1]


def test_job_error_records_fault_seed():
    from repro.harness.faultfuzz import fuzz_specs
    from repro.harness.orchestrator import OrchestratorError

    spec = fuzz_specs(1)[0]
    broken = RunSpec(**{**spec.__dict__, "technique": "no-such-technique"})
    orch = Orchestrator(jobs=1)
    with pytest.raises(OrchestratorError) as exc:
        orch.run([broken])
    assert exc.value.job_error.fault_seed == spec.fault_plan.seed
    assert f"fault seed {spec.fault_plan.seed}" in exc.value.job_error.summary()


def test_backoff_validation():
    with pytest.raises(ValueError):
        Orchestrator(backoff=-0.1)


# -- supervised pool: crashes, wedges, checkpoints, orphans ------------------------


def test_sigkill_recovery_matches_serial_baseline():
    """Satellite gate: SIGKILL a worker mid-job; the job must be
    rescheduled, complete, and aggregate equal to the serial baseline."""
    baseline = identities(Orchestrator(jobs=1).run(SMALL_SPECS))
    victim = spec_key(SMALL_SPECS[1])
    events = []
    orch = Orchestrator(jobs=2, retries=2, progress=events.append,
                        inject_kill=frozenset({victim}))
    results = orch.run(SMALL_SPECS)
    assert identities(results) == baseline
    assert orch.report["crashes"] >= 1
    crash = next(e for e in events if e["event"] == "crash")
    assert crash["exit_code"] == -9
    killed = next(r for r in results if r.key == victim)
    assert killed.attempts >= 2  # first attempt died, retry landed


def test_crashed_job_resumes_from_checkpoint(tmp_path):
    """With checkpoint_every set, the post-crash reschedule continues
    from the last checkpoint instead of cycle 0 — and still matches."""
    base_spec = RunSpec("spmv", "lima", threads=1)
    spec = RunSpec("spmv", "lima", threads=1, checkpoint_every=15_000)
    # checkpoint_every is bit-identity-neutral, so it stays out of the key.
    assert spec_key(spec) == spec_key(base_spec)

    golden = execute_spec(base_spec).identity()
    orch = Orchestrator(jobs=2, retries=1, checkpoint_dir=tmp_path / "ckpt",
                        inject_kill=frozenset({spec_key(spec)}))
    results = orch.run([spec])
    assert results[0].identity() == golden
    assert results[0].resumed and results[0].attempts == 2
    assert orch.report["crashes"] == 1 and orch.report["resumed"] == 1
    # The finished job's checkpoint (and any torn tmp) was cleaned up.
    assert not list((tmp_path / "ckpt").glob("*.ckpt.json*"))


def test_wedged_worker_is_detected_and_rescheduled():
    """SIGSTOP freezes the worker's heartbeat thread without killing the
    process: the wedge detector (not the runtime deadline) must fire."""
    spec = RunSpec("spmv", "lima", threads=1)
    golden = execute_spec(spec).identity()
    events = []
    orch = Orchestrator(jobs=2, retries=1, heartbeat_timeout=0.6,
                        heartbeat_interval=0.05, progress=events.append,
                        inject_stop=frozenset({spec_key(spec)}))
    results = orch.run([spec])
    assert results[0].identity() == golden
    assert orch.report["wedged"] == 1
    assert any(e["event"] == "wedged" for e in events)


def test_exhausted_crashes_raise_typed_with_dump(tmp_path):
    """A job whose every attempt is SIGKILLed must end as a structured
    OrchestratorError (WorkerCrashed + exit code + JSON dump), not a
    hang or an in-process rerun of whatever killed the workers."""
    import multiprocessing
    from pathlib import Path

    from repro.harness.orchestrator import OrchestratorError

    spec = RunSpec("spmv", "lima", threads=1)
    orch = Orchestrator(jobs=2, retries=1, dump_dir=str(tmp_path),
                        inject_kill_all=frozenset({spec_key(spec)}))
    with pytest.raises(OrchestratorError) as exc:
        orch.run([spec])
    job = exc.value.job_error
    assert job.exc_type == "WorkerCrashed" and job.detection == "crash"
    assert job.exit_code == -9 and job.attempt == 2
    assert job.dump_path and Path(job.dump_path).exists()
    dumped = json.loads(Path(job.dump_path).read_text())
    assert dumped["reason"] == "orchestrator-job-failure"
    assert dumped["job_error"]["exc_type"] == "WorkerCrashed"
    assert multiprocessing.active_children() == []


def test_keyboard_interrupt_leaves_no_orphan_workers():
    """Satellite fix: every _run_pool exit path — KeyboardInterrupt
    included — must terminate and join all live workers."""
    import multiprocessing

    def bomb(event):
        if event["event"] == "spawn":
            raise KeyboardInterrupt

    orch = Orchestrator(jobs=2, progress=bomb)
    with pytest.raises(KeyboardInterrupt):
        orch.run([RunSpec("spmv", "lima", threads=1),
                  RunSpec("sdhp", "doall", threads=2)])
    assert multiprocessing.active_children() == []


# -- DiskCache robustness: digests, quarantine, reaping, write failures ------------


def _fake_result(cycles=10):
    from repro.harness.orchestrator import RunResult

    return RunResult(workload="spmv", technique="doall", threads=2,
                     cycles=cycles, fallback_doall=False, total_loads=1,
                     avg_load_latency=1.0, events_executed=5,
                     stats={"a": 1.0}, key="deadbeef")


def test_cache_quarantines_digest_mismatch(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("deadbeef", _fake_result())
    path = tmp_path / "deadbeef.json"
    payload = json.loads(path.read_text())
    payload["cycles"] = 999  # tamper without fixing the embedded sha256
    path.write_text(json.dumps(payload, sort_keys=True))

    assert cache.get("deadbeef") is None
    assert cache.quarantined == 1
    assert (cache.quarantine_dir / "deadbeef.json.quarantined").exists()
    assert not path.exists()  # moved aside, not re-readable


def test_cache_quarantines_truncated_entry(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("deadbeef", _fake_result())
    path = tmp_path / "deadbeef.json"
    path.write_text(path.read_text()[:40])
    assert cache.get("deadbeef") is None
    assert cache.quarantined == 1


def test_cache_write_error_is_absorbed_and_counted(tmp_path):
    cache = DiskCache(tmp_path, inject_write_error=frozenset({"deadbeef"}))
    cache.put("deadbeef", _fake_result())
    assert cache.write_errors == 1
    assert cache.get("deadbeef") is None  # nothing half-written
    assert not list(tmp_path.glob("*.tmp"))


def test_cache_reaps_stale_tmp_and_lock_files(tmp_path):
    import os

    for name in ("old.tmp", "old.lock"):
        stale = tmp_path / name
        stale.write_text("")
        os.utime(stale, (0, 0))
    fresh = tmp_path / "fresh.tmp"
    fresh.write_text("")  # a live writer's file: must survive

    cache = DiskCache(tmp_path, reap_after=60.0)
    assert cache.reaped == 2
    assert fresh.exists()
    assert not (tmp_path / "old.tmp").exists()
    assert not (tmp_path / "old.lock").exists()


def test_heartbeat_validation():
    with pytest.raises(ValueError):
        Orchestrator(heartbeat_timeout=0)
    with pytest.raises(ValueError):
        Orchestrator(heartbeat_interval=-1.0)


# -- deadline budgets, cancellation, typed timeouts (service seams) ----------------


def test_deadline_expiring_mid_run_is_killed_typed_and_orphan_free():
    """A job whose overall deadline budget dies mid-simulation must be
    killed, retired as a typed JobDeadlineExceeded, and leave nothing
    behind — the promise the serving layer builds on."""
    import multiprocessing
    import time

    from repro.harness.orchestrator import OrchestratorError

    orch = Orchestrator(jobs=2, deadline_action="fail")
    with pytest.raises(OrchestratorError) as excinfo:
        orch.run([RunSpec("spmv", "doall", threads=2, scale=4)],
                 deadline=time.monotonic() + 0.2)
    error = excinfo.value.job_error
    assert error.exc_type == "JobDeadlineExceeded"
    assert error.detection == "deadline"
    assert multiprocessing.active_children() == []


def test_deadline_in_serial_path_is_checked_between_cells():
    import time

    from repro.harness.orchestrator import OrchestratorError

    orch = Orchestrator(jobs=1)
    with pytest.raises(OrchestratorError) as excinfo:
        orch.run([RunSpec("spmv", "lima", threads=1)],
                 deadline=time.monotonic() - 1.0)
    assert excinfo.value.job_error.exc_type == "JobDeadlineExceeded"


def test_cancel_event_aborts_the_pool_with_typed_error():
    import multiprocessing
    import threading

    from repro.harness.orchestrator import OrchestratorError

    cancel = threading.Event()

    def tripwire(event):
        if event["event"] == "spawn":
            cancel.set()

    orch = Orchestrator(jobs=2, progress=tripwire)
    with pytest.raises(OrchestratorError) as excinfo:
        orch.run([RunSpec("spmv", "doall", threads=2, scale=4)],
                 cancel=cancel)
    error = excinfo.value.job_error
    assert error.exc_type == "JobCancelled"
    assert error.detection == "cancelled"
    assert multiprocessing.active_children() == []


def test_timeout_with_deadline_action_fail_is_typed_not_fallback():
    """deadline_action='fail' turns retry exhaustion on a hung worker
    into a typed JobTimeout instead of the in-process fallback."""
    import multiprocessing

    from repro.harness.orchestrator import OrchestratorError

    spec = RunSpec("spmv", "lima", threads=1)
    orch = Orchestrator(jobs=2, timeout=0.3, retries=0,
                        heartbeat_timeout=60.0, deadline_action="fail",
                        inject_hang=frozenset({spec_key(spec)}))
    with pytest.raises(OrchestratorError) as excinfo:
        orch.run([spec])
    error = excinfo.value.job_error
    assert error.exc_type == "JobTimeout"
    assert error.detection == "timeout"
    assert "retries are exhausted" in error.message
    assert multiprocessing.active_children() == []


def test_deadline_action_default_keeps_the_fallback_contract():
    """The historical guaranteed-progress default is untouched: with
    deadline_action='fallback' a hung worker still ends in-process."""
    spec = RunSpec("spmv", "lima", threads=1)
    orch = Orchestrator(jobs=2, timeout=0.3, retries=0,
                        heartbeat_timeout=60.0,
                        inject_hang=frozenset({spec_key(spec)}))
    results = orch.run([spec])
    assert results[0].identity() == execute_spec(spec).identity()


def test_deadline_action_validation():
    with pytest.raises(ValueError):
        Orchestrator(deadline_action="explode")


# -- DiskCache size-capped LRU eviction --------------------------------------------


def _entry_bytes(tmp_path) -> int:
    """Size of one real on-disk cache entry (digest included)."""
    probe = DiskCache(tmp_path / "probe")
    probe.put("probe", _fake_result())
    return (tmp_path / "probe" / "probe.json").stat().st_size


def test_cache_lru_evicts_oldest_beyond_the_byte_cap(tmp_path):
    import os
    import time as _time

    entry = _entry_bytes(tmp_path)
    cache = DiskCache(tmp_path / "c", max_bytes=2 * entry + 2)
    for index, key in enumerate(("aaa", "bbb", "ccc")):
        cache.put(key, _fake_result(cycles=index + 1))
        past = _time.time() - 100 + index  # strictly ordered mtimes
        os.utime(tmp_path / "c" / f"{key}.json", (past, past))
    cache._evict_to_fit(keep=tmp_path / "c" / "ccc.json")

    assert cache.get("aaa") is None       # oldest went first
    assert cache.get("ccc") is not None
    assert cache.evicted >= 1
    assert cache.size_bytes() <= 2 * entry + 2
    assert cache.counters()["evicted"] == cache.evicted


def test_cache_lru_touch_on_hit_protects_hot_entries(tmp_path):
    import os
    import time as _time

    entry = _entry_bytes(tmp_path)
    cache = DiskCache(tmp_path / "c", max_bytes=2 * entry + 2)
    cache.put("hot", _fake_result(cycles=1))
    cache.put("cold", _fake_result(cycles=2))
    assert cache.evicted == 0, "two entries must fit under the cap"
    for index, key in enumerate(("hot", "cold")):
        past = _time.time() - 100 + index
        os.utime(tmp_path / "c" / f"{key}.json", (past, past))
    assert cache.get("hot") is not None   # touch refreshes its mtime
    cache.put("new", _fake_result(cycles=3))

    assert cache.get("hot") is not None, "recently-read entry was evicted"
    assert cache.get("cold") is None, "LRU victim survived"


def test_cache_eviction_counters_surface_in_the_report(tmp_path):
    orch = make_orchestrator(jobs=1, use_cache=True, cache_dir=tmp_path,
                             cache_max_bytes=1)
    orch.run([RunSpec("spmv", "lima", threads=1)])
    assert orch.report["cache_evictions"] == 0  # `keep` is never evicted
    assert orch.report["cache_counters"]["evicted"] == 0
    orch.run([RunSpec("sdhp", "doall", threads=2)])
    assert orch.report["cache_evictions"] >= 1  # first entry displaced
    assert orch.report["cache_counters"]["evicted"] >= 1


def test_cache_max_bytes_validation(tmp_path):
    with pytest.raises(ValueError):
        DiskCache(tmp_path, max_bytes=0)
    with pytest.raises(ValueError):
        DiskCache(tmp_path, max_bytes=-5)
