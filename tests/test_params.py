"""Tests for the central SoC configuration."""

import pytest

from repro.params import FPGA_CONFIG, MOSAIC_CONFIG, SoCConfig


def test_defaults_match_table2():
    cfg = FPGA_CONFIG
    assert cfg.num_cores == 2
    assert cfg.l1_size == 8 * 1024 and cfg.l1_ways == 4 and cfg.l1_latency == 2
    assert cfg.l2_size == 64 * 1024 and cfg.l2_ways == 8 and cfg.l2_latency == 30
    assert cfg.dram_latency == 300
    assert cfg.maple_instances == 1
    assert cfg.scratchpad_bytes == 1024
    assert cfg.maple_tlb_entries == 16 == cfg.core_tlb_entries


def test_queue_entries_derived_from_tapeout_geometry():
    # 1KB / 8 queues / 4B = 32 entries (§5.3).
    assert SoCConfig().queue_entries == 32
    assert SoCConfig(scratchpad_bytes=2048).queue_entries == 64
    assert SoCConfig(queue_entry_bytes=8).queue_entries == 16


def test_words_per_line():
    assert SoCConfig().words_per_line == 8


def test_with_overrides_returns_new_frozen_config():
    cfg = SoCConfig()
    other = cfg.with_overrides(num_cores=8)
    assert other.num_cores == 8
    assert cfg.num_cores == 2
    with pytest.raises(Exception):
        cfg.num_cores = 4  # frozen


def test_validation_rejects_bad_geometry():
    with pytest.raises(ValueError):
        SoCConfig(line_size=48)
    with pytest.raises(ValueError):
        SoCConfig(l1_size=1000)
    with pytest.raises(ValueError):
        SoCConfig(l2_size=1000)
    with pytest.raises(ValueError):
        SoCConfig(page_size=100)
    with pytest.raises(ValueError):
        SoCConfig(scratchpad_bytes=1000, maple_num_queues=3)


def test_presets_differ_only_where_tables_differ():
    assert FPGA_CONFIG.l1_size == MOSAIC_CONFIG.l1_size
    assert FPGA_CONFIG.dram_latency == MOSAIC_CONFIG.dram_latency
    assert FPGA_CONFIG.name != MOSAIC_CONFIG.name
