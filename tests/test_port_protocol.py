"""Unit suite for the repro.sim.port protocol layer.

Pins the three protocol guarantees the seam refactor rides on:
bounded-depth backpressure (a sender at channel depth yields until a
response frees a slot), monotonic transaction ids, and well-ordered
trace events — plus the registry's reset/drain lifecycle and the
synchronous post/probe paths.
"""

import pytest

from repro.params import FPGA_CONFIG
from repro.sim import Signal, Simulator
from repro.sim.port import Message, PortRegistry


def make_pair(sim, depth=None, handler=None):
    registry = PortRegistry(sim)
    client = registry.port("client", tile=0, depth=depth)
    server = registry.port("server", tile=1)
    if handler is None:
        def handler(msg):
            yield 5
            return msg.payload
    server.bind(handler)
    registry.connect(client, server)
    return registry, client, server


def test_request_response_returns_handler_value_with_handler_timing():
    sim = Simulator()
    _, client, _ = make_pair(sim)
    out = []

    def proc():
        value = yield from client.request("echo", 21)
        out.append((value, sim.now))

    sim.spawn(proc())
    sim.run()
    assert out == [(21, 5)]
    assert client.tap.requests == client.tap.responses == 1
    assert client.tap.by_kind == {"echo": 1}


def test_message_records_carry_src_dst_payload_txn():
    sim = Simulator()
    seen = []

    def handler(msg):
        seen.append((msg.kind, msg.src, msg.dst, msg.payload, msg.txn))
        yield 1
        return None

    _, client, _ = make_pair(sim, handler=handler)
    sim.spawn(client.request("op", "data"))
    sim.run()
    assert seen == [("op", 0, 1, "data", 0)]
    resp = Message("op", 0, 1, "data", 0).response("result")
    assert (resp.kind, resp.src, resp.dst, resp.payload, resp.txn) == (
        "op.resp", 1, 0, "result", 0)


def test_txn_ids_assigned_monotonically_across_concurrent_senders():
    sim = Simulator()
    seen = []

    def handler(msg):
        seen.append(msg.txn)
        yield 7  # overlap the transactions
        return None

    _, client, _ = make_pair(sim, handler=handler)

    def sender(delay):
        yield delay
        yield from client.request("op", delay)

    for delay in (0, 1, 2, 3):
        sim.spawn(sender(delay))
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert all(b > a for a, b in zip(seen, seen[1:]))


def test_bounded_depth_backpressures_third_sender():
    sim = Simulator()
    holds = []

    def handler(msg):
        signal = Signal(sim, name=f"hold{msg.txn}")
        holds.append(signal)
        yield signal
        return msg.txn

    registry, client, server = make_pair(sim, depth=2, handler=handler)
    done = []

    def sender(tag):
        result = yield from client.request("op", tag)
        done.append((tag, result, sim.now))

    for tag in ("a", "b", "c"):
        sim.spawn(sender(tag))
    sim.run()
    # Two transactions occupy the channel; the third sender stalled.
    assert len(holds) == 2
    assert server.tap.served == 2
    assert client.tap.stalls == 1
    assert client.outstanding == 2

    holds[0].fire()  # completing one admits the stalled sender
    sim.run()
    assert len(holds) == 3
    assert done == [("a", 0, 0)]
    for hold in holds[1:]:
        hold.fire()
    sim.run()
    assert [tag for tag, _, _ in done] == ["a", "b", "c"]
    registry.drain()  # all complete: quiescent


def test_depth_one_serializes_transactions():
    sim = Simulator()
    _, client, _ = make_pair(sim, depth=1)
    ends = []

    def sender():
        yield from client.request("op")
        ends.append(sim.now)

    sim.spawn(sender())
    sim.spawn(sender())
    sim.run()
    # Handler charges 5 cycles; the second sender waits for the first.
    assert ends == [5, 10]
    assert client.tap.stalls == 1


def test_unsaturated_channel_adds_no_cycles():
    sim = Simulator()

    def handler(msg):
        return msg.payload
        yield  # pragma: no cover - makes the handler a generator

    _, client, _ = make_pair(sim, depth=4, handler=handler)
    out = []

    def proc():
        for i in range(3):
            out.append((yield from client.request("op", i)))

    sim.spawn(proc())
    sim.run()
    assert out == [0, 1, 2]
    assert sim.now == 0  # zero-latency handler, zero port overhead
    assert client.tap.stalls == 0


def test_trace_events_ordered_with_matched_phases():
    sim = Simulator()
    registry, client, server = make_pair(sim)
    registry.enable_tracing()
    sim.spawn(client.request("op", 1))
    sim.spawn(client.request("op", 2))
    sim.run()

    events = registry.trace_events()
    cycles = [event[0] for event in events]
    assert cycles == sorted(cycles)
    for txn in (0, 1):
        phases = {phase: cycle for cycle, port, kind, t, phase in events
                  if t == txn}
        assert set(phases) == {"req", "recv", "resp", "done"}
        assert (phases["req"] <= phases["recv"]
                <= phases["resp"] <= phases["done"])


def test_errors_propagate_release_credits_and_are_counted():
    sim = Simulator()

    def handler(msg):
        yield 2
        raise ValueError("device fault")

    registry, client, _ = make_pair(sim, depth=1, handler=handler)
    registry.enable_tracing()
    caught = []

    def proc():
        try:
            yield from client.request("op")
        except ValueError as err:
            caught.append(str(err))
        # The failed transaction released its slot: channel reusable.
        assert client.outstanding == 0

    sim.spawn(proc())
    sim.run()
    assert caught == ["device fault"]
    assert client.tap.errors == 1
    assert client.tap.responses == 0
    assert any(event[4] == "err" for event in registry.trace_events())
    registry.drain()


def test_post_and_probe_are_synchronous_and_counted():
    sim = Simulator()
    registry = PortRegistry(sim)
    client = registry.port("client")
    server = registry.port("server")
    written = []
    server.bind(handler=None,
                posts=lambda kind, payload: written.append((kind, payload)),
                probes=lambda kind, payload: payload * 2)
    registry.connect(client, server)

    client.post("write", (1, 2))
    assert written == [("write", (1, 2))]
    assert client.probe("double", 21) == 42
    assert client.tap.posts == 1
    assert client.tap.probes == 1
    assert sim.now == 0  # no simulated time involved


def test_registry_rejects_duplicates_and_double_connects():
    sim = Simulator()
    registry = PortRegistry(sim)
    a = registry.port("a")
    b = registry.port("b")
    with pytest.raises(ValueError):
        registry.port("a")
    registry.connect(a, b)
    c = registry.port("c")
    with pytest.raises(ValueError):
        registry.connect(a, c)
    assert registry["a"] is a


def test_unbound_port_raises():
    sim = Simulator()
    registry = PortRegistry(sim)
    lone = registry.port("lone")
    with pytest.raises(RuntimeError):
        next(lone.request("op"))
    with pytest.raises(RuntimeError):
        lone.post("op")
    with pytest.raises(RuntimeError):
        lone.probe("op")


def test_drain_flags_inflight_transaction_and_reset_clears_telemetry():
    sim = Simulator()
    hold = []

    def handler(msg):
        signal = Signal(sim, name="hold")
        hold.append(signal)
        yield signal
        return None

    registry, client, _ = make_pair(sim, handler=handler)
    registry.enable_tracing()
    sim.spawn(client.request("op"))
    sim.run()
    with pytest.raises(RuntimeError, match="client"):
        registry.drain()
    with pytest.raises(RuntimeError):
        registry.reset()  # reset demands quiescence too

    hold[0].fire()
    sim.run()
    registry.drain()
    assert client.tap.requests == 1
    registry.reset()
    assert client.tap.requests == 0
    assert client.tap.trace is not None  # tracing stays enabled
    assert list(client.tap.trace) == []


def test_soc_seams_are_ports_with_live_telemetry():
    """Integration: a Fig. 14-style probe drives every seam through the
    registry — core memory traffic, MMIO dispatch over the NoC, and
    MAPLE's device-side fetches — and the SoC drains quiescent."""
    from repro.cpu import Alu, Thread
    from repro.system import Soc

    soc = Soc(FPGA_CONFIG)
    soc.ports.enable_tracing()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)

    def probe():
        handle = yield from api.open(0)
        yield from handle.produce(1)
        yield Alu(500)
        value = yield from handle.consume()
        assert value == 1

    soc.run_threads([(0, Thread(probe(), aspace, "probe"))])
    telemetry = soc.port_telemetry()
    # Core-side: open/produce/consume are three MMIO transactions.
    assert telemetry["core0.mem"]["requests"] >= 3
    assert telemetry["maple0.mmio.dispatch"]["requests"] == 3
    assert telemetry["maple0.mmio"]["served"] == 3
    assert telemetry["maple0.mmio.dispatch"]["by_kind"] == {
        "mmio_load": 2, "mmio_store": 1}
    soc.drain()
    assert soc.ports.trace_events()
    soc.reset()
    assert soc.port_telemetry()["core0.mem"]["requests"] == 0


def test_quiescence_error_names_ports_and_txn_ids():
    """drain() failures are typed and attributable: the error carries a
    ``busy`` map of port name -> outstanding transaction ids."""
    from repro.sim.port import QuiescenceError

    sim = Simulator()
    hold = []

    def handler(msg):
        signal = Signal(sim, name="hold")
        hold.append(signal)
        yield signal
        return None

    registry, client, _ = make_pair(sim, handler=handler)
    sim.spawn(client.request("op"))
    sim.run()
    with pytest.raises(QuiescenceError) as exc:
        registry.drain()
    assert exc.value.busy == {"client": (0,)}
    assert "client" in str(exc.value) and "#0" in str(exc.value)
    hold[0].fire()
    sim.run()
    registry.drain()  # quiescent now
