"""Unit tests for the reliable-delivery port protocol.

A ``reliable=True`` port runs ack/timeout/retransmit with a payload CRC
and a receive window (sequence number = txn id).  The contract under
test, leg by leg:

- fault-free (no channel hook): byte-for-byte the fast path — identical
  timing to an unreliable port (the bit-identity gate);
- a dropped or corrupted request is timed out and retransmitted, with
  exponential backoff, and the handler still runs exactly once;
- a dropped or corrupted *response* is re-requested and answered from
  the receive window — no duplicated side effects;
- an exhausted retry budget raises a typed :class:`DeliveryError`;
- an *unreliable* port on the same faulty channel shows the failure
  modes the protocol exists to prevent: drops hang, corruption silently
  delivers, duplicates re-run the handler.
"""

import json

import pytest

from repro.sim import (
    DataIntegrityError,
    DeliveryError,
    PortRegistry,
    QuiescenceError,
    Simulator,
)

HANDLER_CYCLES = 5


def make_pair(reliable=True, retry_timeout=10, max_retries=4, retry_backoff=2):
    sim = Simulator()
    registry = PortRegistry(sim)
    if reliable:
        registry.configure_reliability(
            reliable=True, retry_timeout=retry_timeout,
            max_retries=max_retries, retry_backoff=retry_backoff)
    client = registry.port("core0.mem", tile=0)
    server = registry.port("mem.core0", tile=1)
    calls = []

    def handler(msg):
        yield HANDLER_CYCLES
        calls.append((msg.kind, msg.payload))
        return ("ok", msg.payload)

    server.bind(handler)
    registry.connect(client, server)
    return sim, registry, client, server, calls


def drive(sim, gen):
    box = {}

    def wrapper():
        box["value"] = yield from gen

    sim.spawn(wrapper())
    sim.run()
    return box.get("value")


def scripted_channel(verdicts):
    """A channel hook that replays ``verdicts`` one per leg traversal
    (request leg first, then response leg), clean once exhausted."""
    pending = list(verdicts)

    def channel(port, msg, leg, attempt):
        if pending:
            return pending.pop(0)
        return None

    return channel


# -- fault-free: the fast path ----------------------------------------------------


def test_reliable_port_is_timing_identical_when_fault_free():
    plain = make_pair(reliable=False)
    armed = make_pair(reliable=True)
    for sim, registry, client, server, calls in (plain, armed):
        assert drive(sim, client.request("load", 0x40)) == ("ok", 0x40)
    assert plain[0].now == armed[0].now == HANDLER_CYCLES
    tap = armed[2].tap
    assert tap.retransmits == 0 and tap.crc_errors == 0
    assert armed[3].tap.dup_dropped == 0


# -- request-leg faults -----------------------------------------------------------


def test_dropped_request_is_retransmitted():
    sim, registry, client, server, calls = make_pair()
    client.channel = scripted_channel([("drop",)])
    assert drive(sim, client.request("load", 1)) == ("ok", 1)
    assert len(calls) == 1
    assert client.tap.retransmits == 1
    # One ack timeout (base + 2^0 backoff) ahead of the clean retry.
    assert sim.now == (10 + 2) + HANDLER_CYCLES


def test_corrupted_request_is_caught_by_receiver_checksum():
    sim, registry, client, server, calls = make_pair()
    client.channel = scripted_channel([
        ("corrupt", lambda payload: payload ^ 0x80)])
    assert drive(sim, client.request("load", 7)) == ("ok", 7)
    assert len(calls) == 1                      # mangled copy never served
    assert server.tap.crc_errors == 1
    assert client.tap.retransmits == 1


def test_duplicated_request_runs_handler_once():
    sim, registry, client, server, calls = make_pair()
    client.channel = scripted_channel([("dup",)])
    assert drive(sim, client.request("load", 3)) == ("ok", 3)
    assert len(calls) == 1
    assert server.tap.dup_dropped == 1
    assert sim.now == HANDLER_CYCLES            # duplicates cost nothing


def test_noop_corruption_passes_the_checksum():
    """A 'corruption' that does not change the rendered payload is not
    detectable — and must not cost a retransmission."""
    sim, registry, client, server, calls = make_pair()
    client.channel = scripted_channel([("corrupt", lambda payload: payload)])
    assert drive(sim, client.request("load", 9)) == ("ok", 9)
    assert client.tap.retransmits == 0
    assert server.tap.crc_errors == 0
    assert sim.now == HANDLER_CYCLES


# -- response-leg faults -----------------------------------------------------------


def test_dropped_response_is_reanswered_from_the_window():
    sim, registry, client, server, calls = make_pair()
    client.channel = scripted_channel([None, ("drop",)])
    assert drive(sim, client.request("load", 2)) == ("ok", 2)
    assert len(calls) == 1                      # side effects exactly once
    assert client.tap.retransmits == 1
    assert server.tap.dup_dropped == 1          # retransmit hit the window
    # Handler ran on attempt 0; the window answers attempt 1 instantly.
    assert sim.now == HANDLER_CYCLES + (10 + 2)


def test_corrupted_response_is_caught_by_sender_checksum():
    sim, registry, client, server, calls = make_pair()
    client.channel = scripted_channel([
        None, ("corrupt", lambda result: ("ok", 999))])
    assert drive(sim, client.request("load", 4)) == ("ok", 4)
    assert len(calls) == 1
    assert client.tap.crc_errors == 1
    assert client.tap.retransmits == 1


# -- retry budget -----------------------------------------------------------------


def test_backoff_grows_exponentially():
    sim, registry, client, server, calls = make_pair()
    client.channel = scripted_channel([("drop",)] * 3)
    assert drive(sim, client.request("load", 5)) == ("ok", 5)
    # Timeouts: (10+2), (10+4), (10+8) then the clean attempt.
    assert sim.now == 12 + 14 + 18 + HANDLER_CYCLES
    assert client.tap.retransmits == 3


def test_exhausted_budget_raises_typed_delivery_error():
    sim, registry, client, server, calls = make_pair(max_retries=2)
    client.channel = scripted_channel([("drop",)] * 10)
    with pytest.raises(DeliveryError) as exc:
        drive(sim, client.request("load", 6))
    err = exc.value
    assert isinstance(err, DataIntegrityError)
    assert err.component == "core0.mem"
    assert err.kind == "load"
    assert err.attempts == 3                    # initial send + 2 retries
    assert err.describe()["error"] == "DeliveryError"
    assert calls == []                          # nothing ever arrived
    assert client.tap.errors == 1
    assert client.outstanding == 0              # txn accounting unwound
    assert server._recv_seen == {}              # window cleaned up


# -- the unprotected port shows why the protocol exists ----------------------------


def test_unreliable_drop_hangs_and_is_attributable():
    sim, registry, client, server, calls = make_pair(reliable=False)
    client.channel = scripted_channel([("drop",)])
    box = {}

    def wrapper():
        box["value"] = yield from client.request("load", 8)

    proc = sim.spawn(wrapper())                 # keep the handle alive
    sim.run()                                   # event queue drains...
    assert "value" not in box                   # ...with the request stuck
    assert proc is not None and client.outstanding == 1
    assert sim.live_processes == 1
    with pytest.raises(QuiescenceError) as exc:
        registry.drain()
    assert "core0.mem" in exc.value.busy


def test_unreliable_corruption_silently_delivers():
    sim, registry, client, server, calls = make_pair(reliable=False)
    client.channel = scripted_channel([None, ("corrupt", lambda r: ("ok", -1))])
    assert drive(sim, client.request("load", 8)) == ("ok", -1)
    assert client.tap.crc_errors == 0           # nobody checked


def test_unreliable_duplicate_runs_handler_twice():
    sim, registry, client, server, calls = make_pair(reliable=False)
    client.channel = scripted_channel([("dup",)])
    assert drive(sim, client.request("store", 8)) == ("ok", 8)
    assert len(calls) == 2                      # duplicated side effects


# -- telemetry --------------------------------------------------------------------


def test_tap_snapshot_json_round_trips():
    sim, registry, client, server, calls = make_pair()
    client.channel = scripted_channel([("drop",), ("corrupt", lambda p: ~p)])
    drive(sim, client.request("load", 1))
    for port in (client, server):
        snap = port.tap.snapshot()
        assert json.loads(json.dumps(snap)) == snap
    assert client.tap.snapshot()["retransmits"] == 2
    assert server.tap.snapshot()["crc_errors"] == 1


def test_registry_reset_zeroes_reliability_counters():
    sim, registry, client, server, calls = make_pair()
    client.channel = scripted_channel([("drop",), ("dup",)])
    drive(sim, client.request("load", 1))
    assert client.tap.retransmits and server.tap.dup_dropped
    registry.reset()
    for name, snap in registry.telemetry().items():
        assert snap["retransmits"] == 0, name
        assert snap["dup_dropped"] == 0, name
        assert snap["crc_errors"] == 0, name
        assert snap["requests"] == 0, name
