"""Direct CLI tests for ``tools/profile_run.py``.

Run the profiler the way a user does — as a subprocess from the repo
root — covering argument parsing, the events/sec header line, the
pstats table (top-N rows, sort key), the raw-dump ``--outfile`` path,
and the exit code.
"""

import marshal
import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def run_tool(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / "profile_run.py"), *args],
        capture_output=True, text=True, env=env, cwd=str(REPO), timeout=300)


def test_profile_run_default_cell_prints_rate_and_profile():
    proc = run_tool("--app", "spmv", "--technique", "doall",
                    "--threads", "2", "--scale", "1")
    assert proc.returncode == 0, proc.stderr
    # Header line: cell id, cycle count, event count, engine-level ev/s.
    header = re.search(
        r"spmv/doall threads=2 scale=1: (\d+) cycles, (\d+) events, "
        r"[\d.]+s in Simulator\.run -> [\d,]+ ev/s",
        proc.stdout)
    assert header, proc.stdout
    assert int(header.group(1)) > 0
    assert int(header.group(2)) > 0
    # pstats table follows, with hot simulation functions in it.
    assert "ncalls" in proc.stdout and "cumtime" in proc.stdout
    assert "engine.py" in proc.stdout


def test_profile_run_top_n_limits_rows():
    proc = run_tool("--app", "spmv", "--technique", "doall",
                    "--threads", "2", "--scale", "1",
                    "--sort", "tottime", "--top", "5")
    assert proc.returncode == 0, proc.stderr
    assert "Ordered by: internal time" in proc.stdout
    assert "to 5 due to restriction" in proc.stdout
    # Five data rows after the column header.
    table_rows = re.findall(r"^\s*[\d/]+\s+[\d.]+\s", proc.stdout, re.M)
    assert len(table_rows) == 5, proc.stdout


def test_profile_run_outfile_dumps_raw_pstats(tmp_path):
    out = tmp_path / "profile.pstats"
    proc = run_tool("--app", "spmv", "--technique", "doall",
                    "--threads", "2", "--scale", "1",
                    "--top", "3", "--outfile", str(out))
    assert proc.returncode == 0, proc.stderr
    assert f"raw profile written to {out}" in proc.stdout
    # The dump is a valid marshal'd pstats payload a Stats object loads.
    with out.open("rb") as fh:
        payload = marshal.load(fh)
    assert isinstance(payload, dict) and payload


def test_profile_run_rejects_unknown_sort_key():
    proc = run_tool("--sort", "callees")
    assert proc.returncode != 0
    assert "invalid choice" in proc.stderr
