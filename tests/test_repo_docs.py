"""Repository hygiene: the documentation deliverables stay consistent."""

from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


def test_design_doc_covers_every_experiment():
    design = read("DESIGN.md")
    for fig in ["Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
                "Fig. 13", "Fig. 14", "Fig. 15"]:
        assert fig in design
    for table in ["Table 1", "Table 2", "Table 3"]:
        assert table in design
    assert "Substitutions" in design


def test_design_doc_bench_paths_exist():
    design = read("DESIGN.md")
    for line in design.splitlines():
        if "benchmarks/test_bench" in line:
            for token in line.split("`"):
                if token.startswith("benchmarks/test_bench"):
                    assert (ROOT / token).exists(), token


def test_experiments_doc_has_verdicts():
    experiments = read("EXPERIMENTS.md")
    assert "Paper" in experiments and "Measured" in experiments
    assert "1.1%" in experiments       # area claim
    assert "25 cycles" in experiments  # round trip claim
    assert "deviation" in experiments.lower()  # honest reporting


def test_readme_quickstart_imports_are_valid():
    # The README's quickstart snippet must reference real symbols.
    from repro.core.api import QueueHandle  # noqa: F401
    from repro.cpu import Thread  # noqa: F401
    from repro.system import FPGA_CONFIG, Soc  # noqa: F401


def test_examples_directory_has_required_scripts():
    examples = {p.name for p in (ROOT / "examples").glob("*.py")}
    assert "quickstart.py" in examples
    assert len(examples) >= 3  # deliverable (b): at least three examples


def test_every_public_module_has_a_docstring():
    import importlib
    for module in ["repro", "repro.sim", "repro.mem", "repro.noc",
                   "repro.vm", "repro.cpu", "repro.core", "repro.system",
                   "repro.compiler", "repro.kernels", "repro.datasets",
                   "repro.baselines", "repro.harness"]:
        assert importlib.import_module(module).__doc__, module
