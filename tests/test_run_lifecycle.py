"""Per-run lifecycle audit: back-to-back runs in one process must not
leak state into each other.

Every experiment builds a fresh :class:`~repro.system.Soc`, so the only
legitimate cross-run state is module-level — and there must be none.
These regressions pin that: two identical runs in one process are
bit-identical (cycles, executed events, full stats snapshot, port
telemetry), with the directory and its MEMORY-plane traffic on as well
as off.  They also pin the per-run cleanup contracts: ports quiescent,
directory line locks reaped, the coherence book consistent, and
:meth:`~repro.sim.port.PortRegistry.reset` really zeroing telemetry
between measurement phases on one Soc.
"""

import pytest

from repro.cpu import Load, Store, Thread
from repro.harness.techniques import run_workload
from repro.params import SoCConfig
from repro.sim.port import QuiescenceError
from repro.system import Soc


def _fingerprint(result):
    return (result.cycles, result.soc.sim.events_executed,
            result.soc.stats_snapshot(), result.soc.port_telemetry())


def _run_once(**overrides):
    config = SoCConfig(name="lifecycle", num_cores=2).with_overrides(
        **overrides)
    return run_workload("spmv", "maple-decouple", config=config,
                        threads=2, scale=1, seed=3, check=True,
                        check_invariants=True)


def test_back_to_back_runs_are_bit_identical():
    first = _fingerprint(_run_once())
    second = _fingerprint(_run_once())
    assert first == second


def test_back_to_back_directory_runs_are_bit_identical():
    overrides = dict(directory=True, directory_slices=2,
                     directory_mem_traffic=True, l1_size=1024,
                     l2_size=8 * 1024)
    first = _fingerprint(_run_once(**overrides))
    second = _fingerprint(_run_once(**overrides))
    assert first == second


def _sharing_soc():
    soc = Soc(SoCConfig(name="lifecycle-dir", num_cores=2,
                        directory=True, directory_slices=2,
                        directory_mem_traffic=True))
    aspace = soc.new_process()
    arr = soc.array(aspace, [0.0] * 64, name="shared")

    def prog(me):
        for i in range(64):
            yield Store(arr.addr(i), float(me + i))
            yield Load(arr.addr((i * 7) % 64))

    soc.run_threads([(c, Thread(prog(c), aspace, f"t{c}"))
                     for c in range(2)])
    return soc


def test_run_leaves_no_inflight_state():
    soc = _sharing_soc()
    soc.drain()  # every port quiescent, or QuiescenceError names it
    # Home-line serialization locks are created on demand and must be
    # reaped once their transaction completes.
    assert soc.directory._locks == {}
    assert soc.directory.debug_state()["locked_lines"] == []
    # The book's records agree with the tag arrays at quiescence.
    assert soc.memsys.book.check() == []


def test_registry_reset_zeroes_telemetry_between_phases():
    soc = _sharing_soc()
    before = soc.port_telemetry()
    assert any(t["requests"] for t in before.values())
    soc.reset()
    after = soc.port_telemetry()
    for name, tap in after.items():
        assert tap["requests"] == 0 and tap["served"] == 0, name
        assert tap["by_kind"] == {}, name


def test_reset_refuses_a_busy_registry():
    soc = Soc(SoCConfig(name="lifecycle-busy", num_cores=1))
    aspace = soc.new_process()
    arr = soc.array(aspace, [0.0] * 8, name="a")

    def prog():
        yield Load(arr.addr(0))

    proc = soc.cores[0].run(Thread(prog(), aspace, "t"))

    def mid_flight():
        yield 5  # the load's DRAM fill is still outstanding
        with pytest.raises(QuiescenceError):
            soc.reset()
        yield proc

    soc.sim.spawn(mid_flight())
    soc.sim.run()
    soc.drain()  # quiescent again once the run finished
    soc.reset()  # ...and now reset is legal
