"""Functional tests for the simulation service (repro.harness.service).

The chaos gate (``test_service_chaos.py``) attacks the service; this
file pins the contract piece by piece: the wire codec's strictness, the
circuit breaker's state machine, the journal's damage tolerance and
compaction, and the HTTP surface end to end over a real loopback socket
(submit/coalesce/cancel/priority/deadline/health, cache fallback after
in-memory eviction, graceful-restart recovery).
"""

import json
import time

import pytest

from repro.harness.orchestrator import RunSpec, spec_key
from repro.harness.service import (
    CircuitBreaker,
    Journal,
    ServiceConfig,
    ServiceSpecError,
    ServiceThread,
    spec_from_wire,
    spec_to_wire,
)

CHEAP = {"workload": "spmv", "technique": "lima", "threads": 1}


def make_service(tmp_path, **overrides):
    defaults = dict(workdir=tmp_path / "svc", workers=1, queue_depth=4,
                    journal_fsync=False, default_checkpoint_every=None)
    defaults.update(overrides)
    svc = ServiceThread(ServiceConfig(**defaults))
    svc.start()
    return svc


def finish(svc, job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, body = svc.request("GET", f"/jobs/{job}?wait=10")
        if body.get("state") not in ("queued", "running"):
            return body
    raise AssertionError("job never finished")


# -- wire codec -------------------------------------------------------------------


def test_wire_codec_round_trips():
    spec = RunSpec("spmv", "desc", threads=4, scale=2, seed=7,
                   prefetch_distance=8, dataset_kwargs=(("density", 0.3),),
                   checkpoint_every=10_000)
    assert spec_from_wire(spec_to_wire(spec)) == spec


@pytest.mark.parametrize("payload, fragment", [
    ("not-a-dict", "JSON object"),
    ({"technique": "lima"}, "missing required"),
    ({"workload": "spmv", "technique": "lima", "bogus": 1}, "unknown spec"),
    ({"workload": "nope", "technique": "lima"}, "unknown workload"),
    ({"workload": "spmv", "technique": "nope"}, "unknown technique"),
    ({"workload": "spmv", "technique": "lima", "threads": "two"},
     "wrong type"),
    ({"workload": "spmv", "technique": "lima", "threads": True},
     "must be an integer"),
    ({"workload": "spmv", "technique": "lima", "threads": 0},
     "out of range"),
    ({"workload": "spmv", "technique": "lima", "seed": 2**33},
     "out of range"),
    ({"workload": "spmv", "technique": "lima",
      "dataset_kwargs": {"x": [1]}}, "scalars"),
])
def test_wire_codec_rejects_bad_specs(payload, fragment):
    with pytest.raises(ServiceSpecError, match=fragment):
        spec_from_wire(payload)


def test_wire_codec_ids_match_orchestrator_keys():
    """The service's job ids are exactly the orchestrator's cache keys."""
    spec = spec_from_wire(CHEAP)
    assert spec_key(spec) == spec_key(RunSpec("spmv", "lima", threads=1))


# -- circuit breaker --------------------------------------------------------------


def test_breaker_opens_after_threshold_and_probes():
    breaker = CircuitBreaker(threshold=2, cooldown=0.05)
    assert breaker.admit()
    breaker.record_failure("worker-crash")
    assert breaker.state == "closed" and breaker.admit()
    breaker.record_failure("worker-crash")
    assert breaker.state == "open"
    assert not breaker.admit()
    time.sleep(0.06)
    assert breaker.admit()           # the half-open probe slot
    assert breaker.state == "half-open"
    assert not breaker.admit()       # only one probe at a time
    breaker.record_success()
    assert breaker.state == "closed"


def test_breaker_reopens_on_failed_probe_and_releases_neutral_probes():
    breaker = CircuitBreaker(threshold=1, cooldown=0.05)
    breaker.record_failure("enospc")
    time.sleep(0.06)
    assert breaker.admit()
    breaker.record_failure("enospc")     # probe failed -> straight open
    assert breaker.state == "open" and breaker.open_count == 2
    time.sleep(0.06)
    assert breaker.admit() and not breaker.admit()
    breaker.release_probe()              # probe ended without a verdict
    assert breaker.admit()               # slot is free again


def test_breaker_rejects_bad_parameters():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown=0)


# -- journal ----------------------------------------------------------------------


def test_journal_append_scan_round_trip(tmp_path):
    journal = Journal(tmp_path / "j.jsonl", fsync=False)
    journal.append("submit", job="a", priority=1)
    journal.append("done", job="a")
    journal.close()
    entries, bad, torn = Journal.scan(tmp_path / "j.jsonl")
    assert [e["e"] for e in entries] == ["submit", "done"]
    assert bad == 0 and not torn


def test_journal_tolerates_torn_tail_and_counts_garbage(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = Journal(path, fsync=False)
    for name in ("a", "b"):
        journal.append("submit", job=name)
    journal.close()
    lines = path.read_text().splitlines()
    lines.insert(1, "{definitely not json")
    lines.append('{"e": "done", "job":')      # torn mid-append
    path.write_text("\n".join(lines))
    entries, bad, torn = Journal.scan(path)
    assert [e["job"] for e in entries] == ["a", "b"]
    assert bad == 1 and torn


def test_journal_scan_of_missing_file_is_empty(tmp_path):
    assert Journal.scan(tmp_path / "absent.jsonl") == ([], 0, False)


def test_journal_compaction_keeps_only_live_submits(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = Journal(path, fsync=False)
    journal.append("submit", job="dead")
    journal.append("done", job="dead")
    live = {"v": 1, "e": "submit", "t": 0.0, "job": "alive"}
    journal.compact([live])
    journal.append("start", job="alive")
    journal.close()
    entries, bad, torn = Journal.scan(path)
    assert [(e["e"], e["job"]) for e in entries] == [
        ("submit", "alive"), ("start", "alive")]
    assert journal.compactions == 1


# -- HTTP surface -----------------------------------------------------------------


def test_submit_runs_to_done_and_serves_cache_on_resubmit(tmp_path):
    svc = make_service(tmp_path)
    try:
        status, _, body = svc.request("POST", "/jobs", {"spec": CHEAP})
        assert status == 202 and body["state"] == "queued"
        final = finish(svc, body["job"])
        assert final["state"] == "done"
        assert final["result"]["cycles"] > 0
        status, _, again = svc.request("POST", "/jobs", {"spec": CHEAP})
        assert status == 200 and again["cached"] and not again["stale"]
        assert again["result"]["cycles"] == final["result"]["cycles"]
    finally:
        svc.stop()


def test_identical_submissions_coalesce_onto_one_job(tmp_path):
    svc = make_service(tmp_path)
    try:
        _, _, first = svc.request("POST", "/jobs", {"spec": CHEAP})
        status, _, second = svc.request("POST", "/jobs", {"spec": CHEAP})
        assert second["job"] == first["job"]
        if second.get("coalesced"):
            assert second["waiters"] == 2
        finish(svc, first["job"])
        _, _, health = svc.request("GET", "/health")
        assert health["counters"]["admitted"] == 1
    finally:
        svc.stop()


def test_bad_spec_and_unknown_job_and_bad_route(tmp_path):
    svc = make_service(tmp_path)
    try:
        status, _, body = svc.request(
            "POST", "/jobs", {"spec": {"workload": "spmv"}})
        assert status == 400 and body["error"] == "invalid-spec"
        status, _, _ = svc.request("GET", "/jobs/" + "0" * 64)
        assert status == 404
        status, _, _ = svc.request("GET", "/nope")
        assert status == 404
        status, _, _ = svc.request("DELETE", "/jobs")
        assert status == 405
        status, _, body = svc.request(
            "POST", "/jobs", {"spec": CHEAP, "priority": 9999})
        assert status == 400
        status, _, body = svc.request(
            "POST", "/jobs", {"spec": CHEAP, "deadline_s": -1})
        assert status == 400
    finally:
        svc.stop()


def test_cancel_queued_job_is_immediate_and_typed(tmp_path):
    svc = make_service(tmp_path)
    try:
        # Occupy the single worker so the victim stays queued.
        svc.request("POST", "/jobs",
                    {"spec": {"workload": "sdhp", "technique": "doall",
                              "threads": 2}})
        _, _, victim = svc.request(
            "POST", "/jobs",
            {"spec": {"workload": "spmv", "technique": "doall",
                      "threads": 2, "seed": 42}})
        status, _, body = svc.request(
            "POST", f"/jobs/{victim['job']}/cancel")
        assert status == 200
        final = finish(svc, victim["job"])
        assert final["state"] == "cancelled"
        _, _, health = svc.request("GET", "/health")
        assert health["credits"]["in_use"] <= 1   # victim's credit is back
    finally:
        svc.stop()


def test_cancel_running_job_kills_it_with_typed_error(tmp_path):
    svc = make_service(tmp_path, default_checkpoint_every=40_000)
    try:
        _, _, body = svc.request(
            "POST", "/jobs",
            {"spec": {"workload": "spmv", "technique": "doall",
                      "threads": 2, "scale": 4}})
        job = body["job"]
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            _, _, state = svc.request("GET", f"/jobs/{job}")
            if state["state"] == "running":
                break
            time.sleep(0.005)
        svc.request("POST", f"/jobs/{job}/cancel")
        final = finish(svc, job)
        assert final["state"] == "cancelled"
        assert (final.get("error") or {}).get("exc_type") == "JobCancelled"
    finally:
        svc.stop()


def test_priority_jumps_the_queue(tmp_path):
    svc = make_service(tmp_path)
    try:
        # Occupier runs; low is queued first, high second but outranks it.
        svc.request("POST", "/jobs", {"spec": CHEAP})
        _, _, low = svc.request(
            "POST", "/jobs",
            {"spec": {"workload": "spmv", "technique": "doall",
                      "threads": 2, "seed": 1}, "priority": -5})
        _, _, high = svc.request(
            "POST", "/jobs",
            {"spec": {"workload": "spmv", "technique": "doall",
                      "threads": 2, "seed": 2}, "priority": 5})
        final_high = finish(svc, high["job"])
        assert final_high["state"] == "done"
        _, _, low_now = svc.request("GET", f"/jobs/{low['job']}")
        assert low_now["state"] != "done", \
            "low-priority job finished before the high-priority one"
        finish(svc, low["job"])
    finally:
        svc.stop()


def test_deadline_budget_is_clamped_to_the_service_maximum(tmp_path):
    svc = make_service(tmp_path, max_deadline_s=5.0)
    try:
        _, _, body = svc.request(
            "POST", "/jobs", {"spec": CHEAP, "deadline_s": 9999})
        assert body["deadline_s"] == 5.0
        finish(svc, body["job"])
    finally:
        svc.stop()


def test_done_jobs_evicted_from_memory_are_served_from_disk(tmp_path):
    svc = make_service(tmp_path, max_done_jobs=1)
    try:
        _, _, first = svc.request("POST", "/jobs", {"spec": CHEAP})
        finish(svc, first["job"])
        _, _, second = svc.request(
            "POST", "/jobs",
            {"spec": {"workload": "sdhp", "technique": "doall",
                      "threads": 2}})
        finish(svc, second["job"])
        # First job was trimmed from memory; the disk cache still has it.
        status, _, body = svc.request("GET", f"/jobs/{first['job']}")
        assert status == 200 and body["state"] == "done"
        assert body["cached"] and body["result"]["cycles"] > 0
    finally:
        svc.stop()


def test_health_reports_the_full_robustness_surface(tmp_path):
    svc = make_service(tmp_path, cache_max_bytes=1_000_000)
    try:
        _, _, health = svc.request("GET", "/health")
        assert health["status"] == "ok"
        assert health["credits"] == {"total": 4, "in_use": 0, "free": 4}
        assert health["breaker"]["state"] == "closed"
        assert health["journal"]["bad_lines"] == 0
        assert "evicted" in health["cache"]
        for counter in ("submitted", "admitted", "coalesced",
                        "rejected_busy", "rejected_open", "recovered"):
            assert counter in health["counters"]
    finally:
        svc.stop()


def test_graceful_restart_recovers_interrupted_jobs(tmp_path):
    cfg = dict(workdir=tmp_path / "svc", workers=1, queue_depth=4,
               journal_fsync=False, default_checkpoint_every=15_000)
    svc = ServiceThread(ServiceConfig(**cfg))
    svc.start()
    _, _, body = svc.request(
        "POST", "/jobs", {"spec": {"workload": "sdhp", "technique": "doall",
                                   "threads": 2}})
    job = body["job"]
    svc.stop()      # graceful: the journal keeps the submit non-terminal

    svc2 = ServiceThread(ServiceConfig(**cfg))
    svc2.start()
    try:
        final = finish(svc2, job)
        assert final["state"] == "done" and final["recovered"]
        _, _, health = svc2.request("GET", "/health")
        assert health["counters"]["recovered"] == 1
    finally:
        svc2.stop()


def test_journal_is_compacted_at_boot(tmp_path):
    cfg = dict(workdir=tmp_path / "svc", workers=1, queue_depth=4,
               journal_fsync=False, default_checkpoint_every=None)
    svc = ServiceThread(ServiceConfig(**cfg))
    svc.start()
    _, _, body = svc.request("POST", "/jobs", {"spec": CHEAP})
    finish(svc, body["job"])
    svc.stop()

    svc2 = ServiceThread(ServiceConfig(**cfg))
    svc2.start()
    try:
        # The completed job's submit/start/done events were compacted
        # away: only the fresh boot event remains on disk.
        entries, _, _ = Journal.scan(tmp_path / "svc" / "journal.jsonl")
        assert [e["e"] for e in entries] == ["boot"]
        assert svc2.service.journal.compactions == 1
    finally:
        svc2.stop()


def test_long_poll_wait_returns_early_on_completion(tmp_path):
    svc = make_service(tmp_path)
    try:
        _, _, body = svc.request("POST", "/jobs", {"spec": CHEAP})
        started = time.monotonic()
        final = finish(svc, body["job"])
        assert final["state"] == "done"
        # The long poll must not burn its full 10s window per request.
        assert time.monotonic() - started < 30
    finally:
        svc.stop()
