"""The service chaos gate: >=100 seeded cases against the job service.

Each case draws one adversity (identical-submission bursts, admission
floods past the credit limit, deadline storms, journal truncation and
garbage, worker-crash breaker trips, injected cache ENOSPC, SIGKILL of
the whole service mid-job) from ``repro.harness.servicefuzz`` and
asserts the serving contract: every completed job matches the golden
serial baseline bit for bit, every failure is a typed state over the
API, recovery resumes from checkpoints, and no orphan processes or
stray tmp/lock files remain.

Set ``REPRO_SERVICE_CHAOS_DIR`` to keep each case's working directory
(journal, checkpoints, the campaign report) for CI artifact upload;
without it everything lands in pytest's tmp_path.
"""

import os
from pathlib import Path

import pytest

from repro.harness.servicefuzz import (
    FAMILIES,
    N_CASES,
    SERVICE_MASTER_SEED,
    run_service_case,
    service_case,
)


def _workdir(tmp_path: Path, case: int) -> Path:
    env = os.environ.get("REPRO_SERVICE_CHAOS_DIR")
    root = Path(env) if env else tmp_path
    return root / f"case-{case:03d}"


def test_gate_is_at_least_100_cases():
    assert N_CASES >= 100


def test_cases_are_reproducible():
    """A failing case number must mean the same adversity everywhere."""
    assert service_case(11) == service_case(11)
    assert service_case(12, SERVICE_MASTER_SEED) == service_case(12)


def test_every_family_is_drawn():
    drawn = {service_case(case).family for case in range(N_CASES)}
    assert drawn == set(FAMILIES)


@pytest.mark.parametrize("case", range(N_CASES))
def test_service_chaos_case(case, tmp_path):
    outcome = run_service_case(case, _workdir(tmp_path, case))
    assert outcome.ok
    assert outcome.family == service_case(case).family
