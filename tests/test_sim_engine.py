"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Signal, Simulator
from repro.sim.engine import SimulationError


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5, lambda: order.append("b"))
    sim.schedule(1, lambda: order.append("a"))
    sim.schedule(9, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 9


def test_same_cycle_events_run_in_insertion_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(3, lambda t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_process_delay_yield_advances_time():
    sim = Simulator()
    seen = []

    def proc():
        seen.append(sim.now)
        yield 10
        seen.append(sim.now)
        yield 5
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [0, 10, 15]


def test_process_return_value_visible_on_handle():
    sim = Simulator()

    def proc():
        yield 1
        return 42

    handle = sim.spawn(proc())
    sim.run()
    assert handle.finished
    assert handle.result == 42


def test_process_join_receives_result():
    sim = Simulator()
    got = []

    def child():
        yield 7
        return "payload"

    def parent():
        handle = sim.spawn(child())
        result = yield handle
        got.append((sim.now, result))

    sim.spawn(parent())
    sim.run()
    assert got == [(7, "payload")]


def test_join_already_finished_process():
    sim = Simulator()
    got = []

    def child():
        return "early"
        yield  # pragma: no cover

    def parent():
        handle = sim.spawn(child())
        yield 50  # child finishes long before we join
        result = yield handle
        got.append(result)

    sim.spawn(parent())
    sim.run()
    assert got == ["early"]


def test_signal_wakes_waiting_process_with_value():
    sim = Simulator()
    sig = Signal(sim)
    got = []

    def waiter():
        value = yield sig
        got.append((sim.now, value))

    def firer():
        yield 20
        sig.fire("data")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == [(20, "data")]


def test_signal_yield_after_fire_passes_through():
    sim = Simulator()
    sig = Signal(sim)
    sig.fire(99)
    got = []

    def waiter():
        value = yield sig
        got.append(value)

    sim.spawn(waiter())
    sim.run()
    assert got == [99]


def test_signal_double_fire_raises():
    sim = Simulator()
    sig = Signal(sim)
    sig.fire()
    with pytest.raises(RuntimeError):
        sig.fire()


def test_bad_yield_type_raises():
    sim = Simulator()

    def proc():
        yield "nonsense"

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_stops_the_clock():
    sim = Simulator()
    fired = []
    sim.schedule(100, lambda: fired.append(True))
    sim.run(until=50)
    assert not fired
    assert sim.now == 50
    sim.run()
    assert fired


def test_max_events_backstop():
    sim = Simulator()

    def forever():
        while True:
            yield 1

    sim.spawn(forever())
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_live_process_accounting():
    sim = Simulator()

    def proc():
        yield 3

    sim.spawn(proc())
    sim.spawn(proc())
    assert sim.live_processes == 2
    sim.run()
    assert sim.live_processes == 0


def test_process_exception_propagates():
    sim = Simulator()

    def bad():
        yield 1
        raise ValueError("model bug")

    sim.spawn(bad())
    with pytest.raises(ValueError, match="model bug"):
        sim.run()


def test_zero_delay_yield_resumes_same_cycle():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield 0
        times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == [0, 0]


def test_run_until_advances_clock_when_queue_drains_early():
    # Regression: run(until=N) used to leave the clock at the last event
    # time when the queue emptied before N; it must land exactly on N.
    sim = Simulator()
    done = []

    def proc():
        yield 5
        done.append(sim.now)

    sim.spawn(proc())
    assert sim.run(until=100) == 100
    assert done == [5]
    assert sim.now == 100


def test_run_until_now_when_queue_already_empty():
    sim = Simulator()
    assert sim.run(until=42) == 42
    assert sim.now == 42


def test_same_cycle_events_run_in_schedule_order():
    # Pins the (time, seq) execution order the batch-drain fast path must
    # preserve: both 5-cycle callbacks were queued before cycle 5, so a
    # zero-delay event created *during* cycle 5 runs after both of them.
    sim = Simulator()
    order = []

    def first_at_5():
        order.append("first")
        sim.schedule(0, lambda: order.append("child-of-first"))

    sim.schedule(5, first_at_5)
    sim.schedule(5, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "child-of-first"]


def test_reference_engine_matches_on_until_semantics():
    # The preserved seed engine carries the same until-drain fix so the
    # golden determinism comparison runs under identical semantics.
    from repro.sim.reference import ReferenceSimulator

    ref = ReferenceSimulator()
    fired = []
    ref.schedule(5, lambda: fired.append(ref.now))
    assert ref.run(until=100) == 100
    assert fired == [5]
    assert ref.now == 100
