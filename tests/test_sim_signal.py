"""Unit tests for Gate, Semaphore, and Barrier."""

import pytest

from repro.sim import Barrier, Gate, Semaphore, Simulator


def test_gate_open_passes_immediately():
    sim = Simulator()
    gate = Gate(sim, opened=True)
    times = []

    def proc():
        yield from gate.wait()
        times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == [0]


def test_gate_blocks_until_opened():
    sim = Simulator()
    gate = Gate(sim)
    times = []

    def waiter():
        yield from gate.wait()
        times.append(sim.now)

    def opener():
        yield 30
        gate.open()

    sim.spawn(waiter())
    sim.spawn(opener())
    sim.run()
    assert times == [30]


def test_gate_reusable_after_close():
    sim = Simulator()
    gate = Gate(sim, opened=True)
    times = []

    def waiter(delay):
        yield delay
        yield from gate.wait()
        times.append(sim.now)

    def controller():
        yield 5
        gate.close()
        yield 20
        gate.open()

    sim.spawn(waiter(0))   # passes at t=0 while open
    sim.spawn(waiter(10))  # arrives closed, released at t=25
    sim.spawn(controller())
    sim.run()
    assert times == [0, 25]


def test_gate_closed_between_wakeup_reblocks():
    # A gate that opens then immediately closes must not leak a waiter through.
    sim = Simulator()
    gate = Gate(sim)
    times = []

    def waiter():
        yield from gate.wait()
        times.append(sim.now)

    def flicker():
        yield 10
        gate.open()
        gate.close()  # closed again before the waiter's resume runs
        yield 10
        gate.open()

    sim.spawn(waiter())
    sim.spawn(flicker())
    sim.run()
    assert times == [20]


def test_semaphore_limits_concurrency():
    sim = Simulator()
    sem = Semaphore(sim, capacity=2)
    active = []
    peak = []

    def worker(i):
        yield from sem.acquire()
        active.append(i)
        peak.append(len(active))
        yield 10
        active.remove(i)
        sem.release()

    for i in range(5):
        sim.spawn(worker(i))
    sim.run()
    assert max(peak) == 2
    assert sim.now == 30  # 5 workers, 2 at a time, 10 cycles each


def test_semaphore_try_acquire():
    sim = Simulator()
    sem = Semaphore(sim, capacity=1)
    assert sem.try_acquire()
    assert not sem.try_acquire()
    sem.release()
    assert sem.try_acquire()


def test_semaphore_over_release_raises():
    sim = Simulator()
    sem = Semaphore(sim, capacity=1)
    with pytest.raises(RuntimeError):
        sem.release()


def test_semaphore_fifo_fairness():
    sim = Simulator()
    sem = Semaphore(sim, capacity=1)
    order = []

    def worker(i, start):
        yield start
        yield from sem.acquire()
        order.append(i)
        yield 5
        sem.release()

    sim.spawn(worker(0, 0))
    sim.spawn(worker(1, 1))
    sim.spawn(worker(2, 2))
    sim.run()
    assert order == [0, 1, 2]


def test_semaphore_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Semaphore(sim, capacity=0)


def test_barrier_releases_all_parties_together():
    sim = Simulator()
    barrier = Barrier(sim, parties=3)
    release_times = []

    def thread(delay):
        yield delay
        yield from barrier.wait()
        release_times.append(sim.now)

    sim.spawn(thread(5))
    sim.spawn(thread(15))
    sim.spawn(thread(25))
    sim.run()
    assert release_times == [25, 25, 25]
    assert barrier.epoch == 1


def test_barrier_reusable_across_epochs():
    sim = Simulator()
    barrier = Barrier(sim, parties=2)
    log = []

    def thread(name, work):
        for layer in range(3):
            yield work
            yield from barrier.wait()
            log.append((name, layer, sim.now))

    sim.spawn(thread("fast", 1))
    sim.spawn(thread("slow", 10))
    sim.run()
    assert barrier.epoch == 3
    # Both threads see each layer end at the slow thread's pace.
    layer_times = sorted({t for (_, _, t) in log})
    assert layer_times == [10, 20, 30]


def test_barrier_single_party_never_blocks():
    sim = Simulator()
    barrier = Barrier(sim, parties=1)
    times = []

    def thread():
        yield 4
        yield from barrier.wait()
        times.append(sim.now)

    sim.spawn(thread())
    sim.run()
    assert times == [4]


def test_barrier_parties_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Barrier(sim, parties=0)
