"""Unit tests for statistics collection."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import Histogram, Stats, geomean


def test_counter_bump_and_default_zero():
    stats = Stats()
    assert stats.get("core0.loads") == 0
    stats.bump("core0.loads")
    stats.bump("core0.loads", 4)
    assert stats.get("core0.loads") == 5


def test_histogram_summary():
    hist = Histogram()
    for v in [10, 20, 30]:
        hist.add(v)
    assert hist.count == 3
    assert hist.mean == 20
    assert hist.min == 10
    assert hist.max == 30
    assert hist.samples == [10, 20, 30]


def test_histogram_summary_only_mode():
    hist = Histogram(keep_samples=False)
    hist.add(5)
    assert hist.samples == []
    assert hist.mean == 5


def test_empty_histogram_mean_is_zero():
    assert Histogram().mean == 0.0


def test_stats_observe_and_histogram_accessor():
    stats = Stats()
    stats.observe("lat", 100)
    stats.observe("lat", 300)
    assert stats.histogram("lat").mean == 200
    # accessor creates on demand
    assert stats.histogram("other").count == 0


def test_scoped_stats_prefixes_keys():
    stats = Stats()
    core = stats.scoped("core1")
    core.bump("loads", 3)
    core.observe("load_latency", 42)
    assert stats.get("core1.loads") == 3
    assert stats.histogram("core1.load_latency").mean == 42
    assert core.get("loads") == 3


def test_snapshot_merges_counters_and_histograms():
    stats = Stats()
    stats.bump("a", 2)
    stats.observe("b", 10)
    snap = stats.snapshot()
    assert snap["a"] == 2
    assert snap["b.mean"] == 10
    assert snap["b.count"] == 1


def test_geomean_known_value():
    assert geomean([1, 4]) == pytest.approx(2.0)
    assert geomean([2, 2, 2]) == pytest.approx(2.0)


def test_geomean_rejects_empty_and_nonpositive():
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    with pytest.raises(ValueError):
        geomean([1.0, -2.0])


@given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=50))
def test_geomean_bounded_by_min_and_max(values):
    g = geomean(values)
    assert min(values) * (1 - 1e-9) <= g <= max(values) * (1 + 1e-9)


@given(st.lists(st.floats(min_value=0.01, max_value=1e3), min_size=1, max_size=30),
       st.floats(min_value=0.1, max_value=10))
def test_geomean_scales_linearly(values, k):
    scaled = geomean([v * k for v in values])
    assert scaled == pytest.approx(geomean(values) * k, rel=1e-6)


@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=200))
def test_histogram_mean_matches_reference(values):
    hist = Histogram()
    for v in values:
        hist.add(v)
    assert hist.mean == pytest.approx(sum(values) / len(values))
    assert hist.min == min(values)
    assert hist.max == max(values)
    assert not math.isinf(hist.mean)
