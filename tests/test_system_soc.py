"""Tests for SoC assembly: placement, wiring, execution helpers."""

import warnings

import pytest

from repro.cpu import Alu, Thread
from repro.noc import placement_tiles
from repro.params import SoCConfig
from repro.system import Soc
from repro.system.soc import MeshGrownWarning
from repro.vm.os_model import SimOS


def test_default_placement_cores_then_maple():
    soc = Soc()
    assert soc.mesh.tiles[0].occupant == "core0"
    assert soc.mesh.tiles[1].occupant == "core1"
    assert soc.mesh.tiles[2].occupant == "maple0"


def test_core_tiles_registered_with_maple():
    soc = Soc()
    assert soc.maples[0].core_tiles == {0: 0, 1: 1}


def test_mmio_pages_distinct_per_instance():
    soc = Soc(SoCConfig(maple_instances=2))
    pages = {m.page_paddr for m in soc.maples}
    assert len(pages) == 2
    assert all(p >= SimOS.MMIO_BASE for p in pages)


def test_mesh_grows_only_when_needed():
    soc = Soc(SoCConfig(num_cores=2, maple_instances=1,
                        mesh_cols=2, mesh_rows=2))
    assert (soc.config.mesh_cols, soc.config.mesh_rows) == (2, 2)
    with pytest.warns(MeshGrownWarning):
        big = Soc(SoCConfig(num_cores=6, maple_instances=2))
    assert big.config.mesh_cols * big.config.mesh_rows >= 8


def test_mesh_growth_warns_with_geometry():
    """Silent mesh growth was a footgun: a 2x2 request quietly became
    whatever fit.  Growth still happens (workloads routinely over-seat
    small default meshes) but now announces itself with the requested
    and grown geometry attached."""
    with pytest.warns(MeshGrownWarning) as record:
        Soc(SoCConfig(num_cores=6, maple_instances=2,
                      mesh_cols=2, mesh_rows=2))
    w = record[0].message
    assert w.requested == (2, 2)
    assert w.needed == 8
    grown_cols, grown_rows = w.grown
    assert grown_cols * grown_rows >= 8
    assert "2x2" in str(w)


def test_exact_fit_mesh_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", MeshGrownWarning)
        soc = Soc(SoCConfig(num_cores=2, maple_instances=2,
                            mesh_cols=2, mesh_rows=2))
    assert (soc.config.mesh_cols, soc.config.mesh_rows) == (2, 2)


def test_placement_policy_seats_maples_at_policy_tiles():
    for policy in ("edge", "center", "per-quadrant"):
        cfg = SoCConfig(num_cores=8, maple_instances=4,
                        mesh_cols=4, mesh_rows=4, maple_placement=policy)
        soc = Soc(cfg)
        expected = placement_tiles(4, 4, 4, policy)
        assert soc.maple_tiles == expected, policy
        for i, tile in enumerate(expected):
            assert soc.mesh.tiles[tile].occupant == f"maple{i}"
        # Cores fill the remaining tiles in tile order.
        seats = [t for t in range(16) if t not in set(expected)][:8]
        assert [soc.core_tiles[c] for c in range(8)] == seats


def test_legacy_placement_unchanged():
    soc = Soc(SoCConfig(num_cores=2, maple_instances=1,
                        maple_placement="legacy"))
    assert soc.maple_tiles == [2]
    assert soc.core_tiles == {0: 0, 1: 1}


def test_driver_assignment_binds_cores_to_nearest_maple():
    soc = Soc(SoCConfig(num_cores=12, maple_instances=4,
                        mesh_cols=4, mesh_rows=4,
                        maple_placement="per-quadrant"))
    assignment = soc.driver.assignment_map()
    assert set(assignment) == set(soc.core_tiles.values())
    for tile, inst in assignment.items():
        hops_chosen = soc.mesh.hops(tile, soc.maple_tiles[inst])
        for other, maple_tile in enumerate(soc.maple_tiles):
            hops_other = soc.mesh.hops(tile, maple_tile)
            assert (hops_chosen, inst) <= (hops_other, other)


def test_run_threads_rejects_double_assignment():
    soc = Soc()
    aspace = soc.new_process()

    def p():
        yield Alu(1)

    with pytest.raises(ValueError, match="assigned twice"):
        soc.run_threads([(0, Thread(p(), aspace, "a")),
                         (0, Thread(p(), aspace, "b"))])


def test_run_threads_returns_last_finish_time():
    soc = Soc()
    aspace = soc.new_process()

    def p(cycles):
        yield Alu(cycles)

    elapsed = soc.run_threads([(0, Thread(p(10), aspace, "a")),
                               (1, Thread(p(250), aspace, "b"))])
    assert elapsed == 250


def test_separate_socs_are_isolated():
    a = Soc()
    b = Soc()
    aspace = a.new_process()
    arr = a.array(aspace, [1], name="x")
    assert b.memsys.mem.words_in_use() < a.memsys.mem.words_in_use()


def test_round_trip_grows_with_distance():
    soc = Soc(SoCConfig(num_cores=4, maple_instances=1,
                        mesh_cols=3, mesh_rows=2))
    maple = soc.maples[0]
    # Core 0 is further from tile 4 than core 3 is.
    assert (maple.round_trip_cycles(soc.cores[0].tile_id)
            > maple.round_trip_cycles(soc.cores[3].tile_id))


def test_two_instances_serve_disjoint_processes():
    from repro.cpu import Thread as T
    soc = Soc(SoCConfig(num_cores=2, maple_instances=2))
    a = soc.new_process()
    b = soc.new_process()
    api_a = soc.driver.attach(a, core_tile=0)
    api_b = soc.driver.attach(b, core_tile=1)
    data_a = soc.array(a, [1.5] * 8, name="da")
    data_b = soc.array(b, [2.5] * 8, name="db")
    got = {}

    def prog(api, data, key, aspace):
        q = yield from api.open(0)
        yield from q.produce_ptr(data.addr(0))
        got[key] = yield from q.consume()

    soc.run_threads([(0, T(prog(api_a, data_a, "a", a), a, "ta")),
                     (1, T(prog(api_b, data_b, "b", b), b, "tb"))])
    # Each instance translated through its own process's page table.
    assert got == {"a": 1.5, "b": 2.5}
    assert api_a.page_vaddr != api_b.page_vaddr or True  # separate spaces


def test_detach_unmaps_and_shoots_down():
    soc = Soc()
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    maple = soc.maples[0]
    soc.driver.detach(aspace, maple)
    assert aspace.page_table.lookup(api.page_vaddr) is None
    with pytest.raises(KeyError):
        soc.driver.detach(aspace, maple)
