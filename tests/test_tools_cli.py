"""Direct CLI tests for the repo's diagnostic tools.

These run ``tools/trace_export.py`` and ``tools/fault_replay.py`` the
way a user does — as subprocesses from the repo root — so argument
parsing, exit codes, and printed output are all covered, not just the
library functions underneath.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def run_tool(script, *args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / script), *args],
        capture_output=True, text=True, env=env, cwd=str(REPO), timeout=300)


# -- trace_export.py --------------------------------------------------------------


def test_trace_export_fig14_writes_chrome_trace(tmp_path):
    out = tmp_path / "fig14.json"
    proc = run_tool("trace_export.py", "--fig14", "-o", str(out))
    assert proc.returncode == 0, proc.stderr
    assert "consume round trip from port trace: 25 cycles" in proc.stdout
    document = json.loads(out.read_text())
    assert document["otherData"]["fig14_roundtrip"]["cycles"] == 25
    events = document["traceEvents"]
    assert any(e.get("ph") == "X" and e["name"] == "mmio_load" for e in events)
    assert any(e.get("ph") == "M" for e in events)  # thread-name metadata


def test_trace_export_requires_a_mode():
    proc = run_tool("trace_export.py")
    assert proc.returncode == 2
    assert "--fig14" in proc.stderr


# -- fault_replay.py: fault-fuzz sweep --------------------------------------------


def test_fault_replay_reruns_a_sweep_case():
    proc = run_tool("fault_replay.py", "--case", "0")
    assert proc.returncode == 0, proc.stderr
    assert "completed correct" in proc.stdout


def test_fault_replay_record_then_check_round_trips(tmp_path):
    log = tmp_path / "log.json"
    rec = run_tool("fault_replay.py", "--case", "5", "--record", str(log))
    assert rec.returncode == 0, rec.stderr
    assert "recorded" in rec.stdout
    recorded = json.loads(log.read_text())
    assert recorded["cycles"] > 0 and recorded["case"] == 5

    chk = run_tool("fault_replay.py", "--case", "5", "--check", str(log))
    assert chk.returncode == 0, chk.stderr
    assert "replay matches" in chk.stdout


def test_fault_replay_check_diverges_nonzero_with_diff(tmp_path):
    log = tmp_path / "log.json"
    rec = run_tool("fault_replay.py", "--case", "5", "--record", str(log))
    assert rec.returncode == 0, rec.stderr
    recorded = json.loads(log.read_text())
    recorded["cycles"] += 1                     # tamper: simulate divergence
    if recorded["events"]:
        recorded["events"][0][1] = "phantom"
    log.write_text(json.dumps(recorded))

    chk = run_tool("fault_replay.py", "--case", "5", "--check", str(log))
    assert chk.returncode == 5
    assert "REPLAY DIVERGED" in chk.stderr
    assert any(line.startswith("-cycles") for line in chk.stderr.splitlines())


# -- fault_replay.py: integrity-fuzz sweep ----------------------------------------


def test_fault_replay_integrity_case_completes():
    proc = run_tool("fault_replay.py", "--integrity", "--case", "0")
    assert proc.returncode == 0, proc.stderr
    assert "completed correct" in proc.stdout


def test_fault_replay_integrity_unrecoverable_exits_typed(tmp_path):
    proc = run_tool("fault_replay.py", "--integrity", "--case", "3",
                    "--dump-dir", str(tmp_path))
    assert proc.returncode == 6
    assert "DATA-INTEGRITY FAILURE" in proc.stderr
    assert "scratchpad_poison" in proc.stderr
    dumps = list(tmp_path.glob("*.json"))
    assert dumps, "expected a structured diagnosis dump"
    dumped = json.loads(dumps[0].read_text())
    assert dumped["integrity"]["kind"] == "scratchpad_poison"


def test_fault_replay_integrity_record_check_round_trips(tmp_path):
    log = tmp_path / "ilog.json"
    rec = run_tool("fault_replay.py", "--integrity", "--case", "1",
                   "--record", str(log))
    assert rec.returncode == 0, rec.stderr
    chk = run_tool("fault_replay.py", "--integrity", "--case", "1",
                   "--check", str(log))
    assert chk.returncode == 0, chk.stderr
    assert "replay matches" in chk.stdout


def test_fault_replay_adhoc_integrity_mode():
    proc = run_tool("fault_replay.py", "--integrity", "--app", "spmv",
                    "--technique", "maple-decouple", "--threads", "2",
                    "--fault-seed", "42")
    assert proc.returncode in (0, 6)            # recovered or typed failure
    assert "ad-hoc: spmv/maple-decouple" in proc.stdout
    assert "integrity[" in proc.stdout
