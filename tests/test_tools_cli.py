"""Direct CLI tests for the repo's diagnostic tools.

These run ``tools/trace_export.py`` and ``tools/fault_replay.py`` the
way a user does — as subprocesses from the repo root — so argument
parsing, exit codes, and printed output are all covered, not just the
library functions underneath.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def run_tool(script, *args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / script), *args],
        capture_output=True, text=True, env=env, cwd=str(REPO), timeout=300)


# -- trace_export.py --------------------------------------------------------------


def test_trace_export_fig14_writes_chrome_trace(tmp_path):
    out = tmp_path / "fig14.json"
    proc = run_tool("trace_export.py", "--fig14", "-o", str(out))
    assert proc.returncode == 0, proc.stderr
    assert "consume round trip from port trace: 25 cycles" in proc.stdout
    document = json.loads(out.read_text())
    assert document["otherData"]["fig14_roundtrip"]["cycles"] == 25
    events = document["traceEvents"]
    assert any(e.get("ph") == "X" and e["name"] == "mmio_load" for e in events)
    assert any(e.get("ph") == "M" for e in events)  # thread-name metadata


def test_trace_export_requires_a_mode():
    proc = run_tool("trace_export.py")
    assert proc.returncode == 2
    assert "--fig14" in proc.stderr


# -- fault_replay.py: fault-fuzz sweep --------------------------------------------


def test_fault_replay_reruns_a_sweep_case():
    proc = run_tool("fault_replay.py", "--case", "0")
    assert proc.returncode == 0, proc.stderr
    assert "completed correct" in proc.stdout


def test_fault_replay_record_then_check_round_trips(tmp_path):
    log = tmp_path / "log.json"
    rec = run_tool("fault_replay.py", "--case", "5", "--record", str(log))
    assert rec.returncode == 0, rec.stderr
    assert "recorded" in rec.stdout
    recorded = json.loads(log.read_text())
    assert recorded["cycles"] > 0 and recorded["case"] == 5

    chk = run_tool("fault_replay.py", "--case", "5", "--check", str(log))
    assert chk.returncode == 0, chk.stderr
    assert "replay matches" in chk.stdout


def test_fault_replay_check_diverges_nonzero_with_diff(tmp_path):
    log = tmp_path / "log.json"
    rec = run_tool("fault_replay.py", "--case", "5", "--record", str(log))
    assert rec.returncode == 0, rec.stderr
    recorded = json.loads(log.read_text())
    recorded["cycles"] += 1                     # tamper: simulate divergence
    if recorded["events"]:
        recorded["events"][0][1] = "phantom"
    log.write_text(json.dumps(recorded))

    chk = run_tool("fault_replay.py", "--case", "5", "--check", str(log))
    assert chk.returncode == 5
    assert "REPLAY DIVERGED" in chk.stderr
    assert any(line.startswith("-cycles") for line in chk.stderr.splitlines())


# -- fault_replay.py: integrity-fuzz sweep ----------------------------------------


def test_fault_replay_integrity_case_completes():
    proc = run_tool("fault_replay.py", "--integrity", "--case", "0")
    assert proc.returncode == 0, proc.stderr
    assert "completed correct" in proc.stdout


def test_fault_replay_integrity_unrecoverable_exits_typed(tmp_path):
    proc = run_tool("fault_replay.py", "--integrity", "--case", "3",
                    "--dump-dir", str(tmp_path))
    assert proc.returncode == 6
    assert "DATA-INTEGRITY FAILURE" in proc.stderr
    assert "scratchpad_poison" in proc.stderr
    dumps = list(tmp_path.glob("*.json"))
    assert dumps, "expected a structured diagnosis dump"
    dumped = json.loads(dumps[0].read_text())
    assert dumped["integrity"]["kind"] == "scratchpad_poison"


def test_fault_replay_integrity_record_check_round_trips(tmp_path):
    log = tmp_path / "ilog.json"
    rec = run_tool("fault_replay.py", "--integrity", "--case", "1",
                   "--record", str(log))
    assert rec.returncode == 0, rec.stderr
    chk = run_tool("fault_replay.py", "--integrity", "--case", "1",
                   "--check", str(log))
    assert chk.returncode == 0, chk.stderr
    assert "replay matches" in chk.stdout


def test_fault_replay_adhoc_integrity_mode():
    proc = run_tool("fault_replay.py", "--integrity", "--app", "spmv",
                    "--technique", "maple-decouple", "--threads", "2",
                    "--fault-seed", "42")
    assert proc.returncode in (0, 6)            # recovered or typed failure
    assert "ad-hoc: spmv/maple-decouple" in proc.stdout
    assert "integrity[" in proc.stdout


# -- fault_replay.py: checkpoint save/resume --------------------------------------


def test_fault_replay_checkpoint_out_then_resume(tmp_path):
    ckpt = tmp_path / "case0.ckpt.json"
    rec = run_tool("fault_replay.py", "--case", "0",
                   "--checkpoint-out", str(ckpt), "--checkpoint-every", "5000")
    assert rec.returncode == 0, rec.stderr
    assert ckpt.exists(), "no checkpoint was written"
    cycles = [line for line in rec.stdout.splitlines()
              if "completed correct" in line]

    res = run_tool("fault_replay.py", "--case", "0",
                   "--from-checkpoint", str(ckpt))
    assert res.returncode == 0, res.stderr
    assert "resuming from checkpoint @" in res.stdout
    # The resumed replay reports the identical summary line.
    assert [line for line in res.stdout.splitlines()
            if "completed correct" in line] == cycles


def test_fault_replay_corrupt_checkpoint_exits_7(tmp_path):
    bad = tmp_path / "bad.ckpt.json"
    bad.write_text("{torn")
    proc = run_tool("fault_replay.py", "--case", "0",
                    "--from-checkpoint", str(bad))
    assert proc.returncode == 7
    assert "CORRUPT CHECKPOINT" in proc.stderr


# -- checkpoint_ctl.py ------------------------------------------------------------


def _spec_checkpoint(tmp_path):
    """A spec-carrying mid-run checkpoint file + its golden cycle count."""
    from dataclasses import replace

    from repro.harness.orchestrator import RunSpec, execute_spec

    spec = RunSpec("spmv", "lima", threads=1)
    golden = execute_spec(spec)
    path = tmp_path / "spec.ckpt.json"
    execute_spec(replace(spec, checkpoint_every=15_000),
                 checkpoint_path=str(path))
    return path, golden


def test_checkpoint_ctl_inspect_validate_resume(tmp_path):
    path, golden = _spec_checkpoint(tmp_path)

    val = run_tool("checkpoint_ctl.py", "validate", str(path))
    assert val.returncode == 0, val.stderr
    assert "valid checkpoint" in val.stdout and "resumable=True" in val.stdout

    ins = run_tool("checkpoint_ctl.py", "inspect", str(path), "--json")
    assert ins.returncode == 0, ins.stderr
    info = json.loads(ins.stdout)
    assert 0 < info["cycle"] < golden.cycles
    assert info["resumable"] is True
    assert set(info["digests"]) >= {"engine", "caches", "memory", "stats"}

    res = run_tool("checkpoint_ctl.py", "resume", str(path))
    assert res.returncode == 0, res.stderr
    assert f"completed at cycles={golden.cycles}" in res.stdout


def test_checkpoint_ctl_corrupt_exits_2(tmp_path):
    bad = tmp_path / "bad.ckpt.json"
    bad.write_text('{"kind": "repro-soc-checkpoint", "schema": 1')
    for command in ("inspect", "validate", "resume"):
        proc = run_tool("checkpoint_ctl.py", command, str(bad))
        assert proc.returncode == 2, (command, proc.stdout, proc.stderr)
        assert "CORRUPT CHECKPOINT" in proc.stderr


def test_checkpoint_ctl_spec_less_resume_exits_3(tmp_path):
    from repro.sim.checkpoint import Checkpoint

    path, _golden = _spec_checkpoint(tmp_path)
    ckpt = Checkpoint.load(path)
    ckpt.spec_b64 = None
    ckpt.spec_key = None
    spec_less = tmp_path / "adhoc.ckpt.json"
    ckpt.save(spec_less)

    assert run_tool("checkpoint_ctl.py", "validate",
                    str(spec_less)).returncode == 0
    proc = run_tool("checkpoint_ctl.py", "resume", str(spec_less))
    assert proc.returncode == 3
    assert "UNRESUMABLE" in proc.stderr


# -- service_ctl.py: submit/status/health against a live service ------------------


import pytest


@pytest.fixture()
def service(tmp_path):
    from repro.harness.service import ServiceConfig, ServiceThread

    svc = ServiceThread(ServiceConfig(
        workdir=tmp_path / "svc", workers=1, queue_depth=4,
        journal_fsync=False, default_checkpoint_every=None))
    svc.start()
    try:
        yield f"http://127.0.0.1:{svc.port}"
    finally:
        svc.stop()


def test_service_ctl_submit_wait_reaches_done(service):
    proc = run_tool("service_ctl.py", "--url", service, "submit",
                    "--workload", "spmv", "--technique", "lima",
                    "--threads", "1", "--wait")
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["state"] == "done"
    assert payload["result"]["cycles"] > 0

    # The same submission again is a cache hit (exit 0, cached marker).
    again = run_tool("service_ctl.py", "--url", service, "submit",
                     "--workload", "spmv", "--technique", "lima",
                     "--threads", "1")
    assert again.returncode == 0
    assert json.loads(again.stdout)["cached"] is True


def test_service_ctl_status_and_cancel(service):
    submitted = run_tool("service_ctl.py", "--url", service, "submit",
                         "--workload", "sdhp", "--technique", "doall",
                         "--threads", "2")
    job = json.loads(submitted.stdout)["job"]
    status = run_tool("service_ctl.py", "--url", service, "status", job)
    assert status.returncode in (0, 1)  # racing the tiny simulation
    cancel = run_tool("service_ctl.py", "--url", service, "cancel", job)
    assert cancel.returncode == 0, cancel.stderr


def test_service_ctl_health_reports_ok(service):
    proc = run_tool("service_ctl.py", "--url", service, "health")
    assert proc.returncode == 0, proc.stderr
    health = json.loads(proc.stdout)
    assert health["status"] == "ok"
    assert health["breaker"]["state"] == "closed"


def test_service_ctl_invalid_spec_exits_2(service):
    proc = run_tool("service_ctl.py", "--url", service, "submit",
                    "--workload", "nope", "--technique", "lima")
    assert proc.returncode == 2, proc.stdout


def test_service_ctl_unknown_job_exits_1(service):
    proc = run_tool("service_ctl.py", "--url", service, "status", "0" * 64)
    assert proc.returncode == 1


def test_service_ctl_unreachable_exits_3():
    proc = run_tool("service_ctl.py", "--url", "http://127.0.0.1:9",
                    "health")
    assert proc.returncode == 3
    assert "unreachable" in proc.stderr


def test_service_ctl_requires_a_url():
    env_clean = dict(os.environ)
    env_clean.pop("REPRO_SERVICE_URL", None)
    env_clean["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "service_ctl.py"), "health"],
        capture_output=True, text=True, env=env_clean, cwd=str(REPO),
        timeout=60)
    assert proc.returncode == 2
    assert "--url" in proc.stderr
