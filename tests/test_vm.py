"""Tests for paging, TLBs, the walker, and the OS model."""

import pytest
from hypothesis import given, strategies as st

from repro.mem import MemorySystem
from repro.params import SoCConfig
from repro.sim import Simulator, Stats
from repro.vm import (
    PageTableWalker,
    SegmentationFault,
    SimOS,
    Tlb,
    TranslationFault,
    vpn_indices,
)
from repro.vm.address import PAGE_SIZE, page_round_up
from repro.vm.alloc import alloc_array
from repro.vm.page_table import PTE_R, PTE_U, PTE_W


def make_os(**overrides):
    cfg = SoCConfig().with_overrides(**overrides) if overrides else SoCConfig()
    sim = Simulator()
    stats = Stats()
    memsys = MemorySystem(sim, cfg, stats)
    for core in range(cfg.num_cores):
        memsys.add_core(core)
    return sim, SimOS(sim, memsys, cfg), stats


def drive(sim, gen):
    box = {}

    def wrapper():
        box["value"] = yield from gen
        box["end"] = sim.now

    start = sim.now
    sim.spawn(wrapper())
    sim.run()
    return box.get("value"), box.get("end", sim.now) - start


# -- address arithmetic ------------------------------------------------------

def test_vpn_indices_of_zero():
    assert vpn_indices(0) == (0, 0, 0)


def test_vpn_indices_split():
    vaddr = (3 << 30) | (5 << 21) | (7 << 12) | 0x123
    assert vpn_indices(vaddr) == (3, 5, 7)


def test_vpn_indices_range_check():
    with pytest.raises(ValueError):
        vpn_indices(1 << 39)


def test_page_round_up():
    assert page_round_up(1) == PAGE_SIZE
    assert page_round_up(PAGE_SIZE) == PAGE_SIZE
    assert page_round_up(PAGE_SIZE + 1) == 2 * PAGE_SIZE


# -- page table ---------------------------------------------------------------

def test_map_and_lookup_roundtrip():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    frame = os.alloc_frame()
    aspace.page_table.map_page(0x4000_0000, frame)
    assert aspace.page_table.lookup(0x4000_0000) == frame
    assert aspace.page_table.lookup(0x4000_0008) == frame + 8
    assert aspace.page_table.lookup(0x4000_1000) is None


def test_unmap_page():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    frame = os.alloc_frame()
    aspace.page_table.map_page(0x4000_0000, frame)
    assert aspace.page_table.unmap_page(0x4000_0000)
    assert aspace.page_table.lookup(0x4000_0000) is None
    assert not aspace.page_table.unmap_page(0x4000_0000)


def test_two_address_spaces_are_isolated():
    _, os, _ = make_os()
    a = os.create_address_space()
    b = os.create_address_space()
    frame_a = os.alloc_frame()
    frame_b = os.alloc_frame()
    a.page_table.map_page(0x5000_0000, frame_a)
    b.page_table.map_page(0x5000_0000, frame_b)
    assert a.page_table.lookup(0x5000_0000) == frame_a
    assert b.page_table.lookup(0x5000_0000) == frame_b


@given(st.lists(st.integers(min_value=0, max_value=(1 << 27) - 1), min_size=1,
                max_size=30, unique=True))
def test_many_mappings_all_resolve(vpns):
    _, os, _ = make_os()
    aspace = os.create_address_space()
    expected = {}
    for vpn in vpns:
        vaddr = vpn * PAGE_SIZE
        frame = os.alloc_frame()
        aspace.page_table.map_page(vaddr, frame)
        expected[vaddr] = frame
    for vaddr, frame in expected.items():
        assert aspace.page_table.lookup(vaddr + 0x10) == frame + 0x10


# -- TLB -------------------------------------------------------------------------

def test_tlb_hit_and_miss():
    tlb = Tlb(entries=4)
    assert tlb.translate(0x1000) is None
    tlb.insert(0x1000, 0x8000, PTE_R)
    assert tlb.translate(0x1234) == (0x8234, PTE_R)


def test_tlb_lru_eviction():
    tlb = Tlb(entries=2)
    tlb.insert(0x1000, 0xA000, 0)
    tlb.insert(0x2000, 0xB000, 0)
    tlb.translate(0x1000)          # refresh 0x1000
    tlb.insert(0x3000, 0xC000, 0)  # evicts 0x2000
    assert tlb.translate(0x2000) is None
    assert tlb.translate(0x1000) is not None


def test_tlb_invalidate_page():
    tlb = Tlb(entries=4)
    tlb.insert(0x1000, 0xA000, 0)
    assert tlb.invalidate_page(0x1abc)
    assert tlb.translate(0x1000) is None
    assert not tlb.invalidate_page(0x1000)


def test_tlb_flush():
    tlb = Tlb(entries=4)
    tlb.insert(0x1000, 0xA000, 0)
    tlb.insert(0x2000, 0xB000, 0)
    tlb.flush()
    assert len(tlb) == 0


def test_tlb_reinsert_same_page_does_not_grow():
    tlb = Tlb(entries=2)
    tlb.insert(0x1000, 0xA000, 0)
    tlb.insert(0x1000, 0xA000, 0)
    assert len(tlb) == 1


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
def test_tlb_never_exceeds_capacity(pages):
    tlb = Tlb(entries=16)
    for vpn in pages:
        tlb.insert(vpn * PAGE_SIZE, (vpn + 1000) * PAGE_SIZE, 0)
        assert len(tlb) <= 16
    # Most recently inserted page is always resident.
    assert tlb.translate(pages[-1] * PAGE_SIZE) is not None


# -- walker ------------------------------------------------------------------------

def test_walker_translates_with_timing():
    sim, os, stats = make_os()
    aspace = os.create_address_space()
    frame = os.alloc_frame()
    aspace.page_table.map_page(0x6000_0000, frame, PTE_R | PTE_W | PTE_U)
    walker = PageTableWalker(os.memsys, stats.scoped("ptw"))
    (paddr, flags), cycles = drive(sim, walker.walk(aspace.root_paddr, 0x6000_0040))
    assert paddr == frame + 0x40
    assert flags & PTE_R
    assert cycles > 0
    assert stats.get("ptw.walks") == 1


def test_walker_warm_walk_is_cheaper():
    sim, os, stats = make_os()
    aspace = os.create_address_space()
    frame = os.alloc_frame()
    aspace.page_table.map_page(0x6000_0000, frame)
    walker = PageTableWalker(os.memsys, stats.scoped("ptw"))
    _, cold = drive(sim, walker.walk(aspace.root_paddr, 0x6000_0000))
    _, warm = drive(sim, walker.walk(aspace.root_paddr, 0x6000_0000))
    assert warm < cold  # page-table lines now cached in L2
    assert warm == 3 * os.config.l2_latency


def test_walker_faults_on_unmapped():
    sim, os, stats = make_os()
    aspace = os.create_address_space()
    walker = PageTableWalker(os.memsys, stats.scoped("ptw"))

    def proc():
        try:
            yield from walker.walk(aspace.root_paddr, 0x7000_0000)
        except TranslationFault as fault:
            assert fault.vaddr == 0x7000_0000

    sim.spawn(proc())
    sim.run()
    assert stats.get("ptw.faults") == 1


# -- OS model ------------------------------------------------------------------------

def test_mmap_eager_maps_all_pages():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    base = os.mmap(aspace, 3 * PAGE_SIZE)
    for off in range(0, 3 * PAGE_SIZE, PAGE_SIZE):
        assert aspace.page_table.lookup(base + off) is not None


def test_mmap_lazy_defers_mapping():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    base = os.mmap(aspace, PAGE_SIZE, lazy=True)
    assert aspace.page_table.lookup(base) is None
    assert aspace.find_vma(base) is not None


def test_fault_handler_maps_lazy_page():
    sim, os, _ = make_os()
    aspace = os.create_address_space()
    base = os.mmap(aspace, PAGE_SIZE, lazy=True)
    _, cycles = drive(sim, os.handle_fault(aspace, base + 0x10))
    assert cycles == SimOS.FAULT_HANDLING_CYCLES
    assert aspace.page_table.lookup(base + 0x10) is not None


def test_fault_handler_segfaults_outside_vmas():
    sim, os, _ = make_os()
    aspace = os.create_address_space()

    def proc():
        with pytest.raises(SegmentationFault):
            yield from os.handle_fault(aspace, 0x9999_0000)

    sim.spawn(proc())
    sim.run()


def test_munmap_shoots_down_registered_tlbs():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    base = os.mmap(aspace, PAGE_SIZE)
    tlb = Tlb(entries=4)
    os.register_tlb(tlb)
    paddr = aspace.page_table.lookup(base)
    tlb.insert(base, paddr & ~(PAGE_SIZE - 1), PTE_R)
    seen = []
    os.register_shootdown_callback(seen.append)
    os.munmap(aspace, base, PAGE_SIZE)
    assert tlb.translate(base) is None
    assert seen == [base]
    assert aspace.page_table.lookup(base) is None


def test_map_device_page():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    device_page = SimOS.MMIO_BASE
    vaddr = os.map_device_page(aspace, device_page, name="maple0")
    assert aspace.page_table.lookup(vaddr) == device_page
    assert aspace.find_vma(vaddr).name == "maple0"


def test_map_device_page_alignment_check():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    with pytest.raises(ValueError):
        os.map_device_page(aspace, SimOS.MMIO_BASE + 8)


# -- arrays ---------------------------------------------------------------------------

def test_alloc_array_roundtrip():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    array = alloc_array(os, aspace, [1.5, 2.5, 3.5], name="x")
    assert array.to_list() == [1.5, 2.5, 3.5]
    array.write(1, 9)
    assert array.read(1) == 9


def test_alloc_array_zero_initialized_by_length():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    array = alloc_array(os, aspace, 10, name="zeros")
    assert array.to_list() == [0] * 10


def test_array_bounds_checked():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    array = alloc_array(os, aspace, 4, name="x")
    with pytest.raises(IndexError):
        array.addr(4)
    with pytest.raises(IndexError):
        array.read(-1)


def test_array_spanning_pages():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    n = PAGE_SIZE // 8 + 10  # crosses a page boundary
    array = alloc_array(os, aspace, list(range(n)), name="big")
    assert array.read(0) == 0
    assert array.read(n - 1) == n - 1


def test_lazy_array_functional_access_fails_until_mapped():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    array = alloc_array(os, aspace, 4, name="lazy", lazy=True)
    with pytest.raises(RuntimeError):
        array.read(0)


def test_lazy_array_cannot_be_prefilled():
    _, os, _ = make_os()
    aspace = os.create_address_space()
    with pytest.raises(ValueError):
        alloc_array(os, aspace, [1, 2], lazy=True)
