"""Property tests tying the timed hardware paths to functional truth."""

from hypothesis import given, settings, strategies as st

from repro.mem import MemorySystem
from repro.params import SoCConfig
from repro.sim import Simulator, Stats
from repro.vm import PageTableWalker, TranslationFault
from repro.vm.address import PAGE_SIZE
from repro.vm.os_model import SimOS


def make_os():
    sim = Simulator()
    ms = MemorySystem(sim, SoCConfig(), Stats())
    ms.add_core(0)
    return sim, SimOS(sim, ms, ms.config)


def drive(sim, gen):
    box = {}

    def wrapper():
        try:
            box["v"] = yield from gen
        except TranslationFault as fault:
            box["fault"] = fault

    sim.spawn(wrapper())
    sim.run()
    return box


@given(st.lists(st.integers(min_value=0, max_value=(1 << 26) - 1),
                min_size=1, max_size=12, unique=True),
       st.integers(min_value=0, max_value=PAGE_SIZE // 8 - 1))
@settings(max_examples=20, deadline=None)
def test_timed_walker_agrees_with_functional_lookup(vpns, word):
    """The hardware walker (timed, reads PTEs through the cache
    hierarchy) must translate identically to the zero-time functional
    page-table lookup, for every mapped page — and fault exactly where
    the functional lookup says 'unmapped'."""
    sim, os = make_os()
    aspace = os.create_address_space()
    walker = PageTableWalker(os.memsys)
    mapped = {}
    for vpn in vpns[: len(vpns) // 2 + 1]:
        vaddr = vpn * PAGE_SIZE
        frame = os.alloc_frame()
        aspace.page_table.map_page(vaddr, frame)
        mapped[vpn] = frame
    for vpn in vpns:
        probe = vpn * PAGE_SIZE + word * 8
        functional = aspace.page_table.lookup(probe)
        box = drive(sim, walker.walk(aspace.root_paddr, probe))
        if vpn in mapped:
            assert functional == mapped[vpn] + word * 8
            assert box["v"][0] == functional
        else:
            assert functional is None
            assert "fault" in box


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_simulation_is_deterministic(seed):
    """Two identical simulations produce identical traces, whatever the
    process interleaving."""
    import random

    def run_once():
        sim = Simulator()
        trace = []
        rng = random.Random(seed)
        delays = [rng.randrange(1, 20) for _ in range(30)]

        def proc(pid, my_delays):
            for d in my_delays:
                yield d
                trace.append((sim.now, pid))

        for pid in range(3):
            sim.spawn(proc(pid, delays[pid * 10:(pid + 1) * 10]))
        sim.run()
        return trace

    assert run_once() == run_once()
