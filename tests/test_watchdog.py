"""Unit tests for the liveness watchdog (``repro.sim.watchdog``).

The contract: a healthy run is untouched (no extra cycles, no kept-alive
simulation), a trip produces a structured diagnosis naming the stuck
seams, and dumps land where configured (argument, then environment).
"""

import json

import pytest

from repro.cpu.core import Thread
from repro.cpu.isa import Alu
from repro.sim import LivenessError, Watchdog
from repro.sim.watchdog import (
    DUMP_DIR_ENV,
    collect_diagnosis,
    raise_liveness,
    write_dump,
)
from repro.system.soc import Soc


def _small_soc():
    soc = Soc()
    aspace = soc.new_process()
    return soc, aspace


# -- construction ----------------------------------------------------------------


def test_parameter_validation():
    soc, _ = _small_soc()
    with pytest.raises(ValueError):
        Watchdog(soc, check_interval=0)
    with pytest.raises(ValueError):
        Watchdog(soc, check_interval=1000, stall_window=500)


def test_arm_is_idempotent_and_disarm_stops_ticking():
    soc, _ = _small_soc()
    monitor = Watchdog(soc, check_interval=10)
    assert monitor.arm() is monitor
    monitor.arm()  # second arm: no second tick chain
    assert soc.sim.utility_ticks == 1
    monitor.disarm()
    soc.sim.run()
    # The already-queued tick fires once, sees the disarm, and stops.
    assert soc.sim.utility_ticks == 0
    assert not monitor.tripped


def test_watchdog_never_keeps_a_finished_run_alive():
    """A healthy workload with an armed watchdog terminates with clean
    utility-tick accounting — the tick chain dies with the model."""
    soc, aspace = _small_soc()

    def program():
        for _ in range(20):
            yield Alu(5)

    monitor = Watchdog(soc, check_interval=7)
    cycles = soc.run_threads([(0, Thread(program(), aspace, "busywork"))],
                             watchdog=monitor)
    assert cycles > 0
    assert soc.sim.utility_ticks == 0
    assert monitor.ticks > 0 and not monitor.tripped


# -- diagnosis --------------------------------------------------------------------


def test_collect_diagnosis_covers_all_subsystems():
    soc, _ = _small_soc()
    diagnosis = collect_diagnosis(soc, "unit-test")
    assert diagnosis["reason"] == "unit-test"
    assert diagnosis["engine"]["live_processes"] == 0
    assert set(diagnosis) >= {"ports", "busy_ports", "maples", "memory",
                              "os", "attachments"}
    assert diagnosis["busy_ports"] == []
    assert "core0.mem" in diagnosis["ports"]
    assert 0 in diagnosis["maples"]


def test_collect_diagnosis_tolerates_partial_rigs():
    class Rig:
        class sim:
            now = 12
            live_processes = 1
            pending_events = 0
            events_executed = 3

    diagnosis = collect_diagnosis(Rig(), "partial")
    assert diagnosis["cycle"] == 12
    assert "ports" not in diagnosis and "maples" not in diagnosis


# -- dumps ------------------------------------------------------------------------


def test_write_dump_explicit_dir(tmp_path):
    path = write_dump({"reason": "stall", "cycle": 99}, str(tmp_path))
    assert path is not None and path.endswith("watchdog-stall-cycle99.json")
    assert json.loads(open(path).read())["reason"] == "stall"


def test_write_dump_env_fallback(tmp_path, monkeypatch):
    monkeypatch.setenv(DUMP_DIR_ENV, str(tmp_path))
    path = write_dump({"reason": "deadlock", "cycle": 5})
    assert path is not None and str(tmp_path) in path


def test_write_dump_off_by_default(monkeypatch):
    monkeypatch.delenv(DUMP_DIR_ENV, raising=False)
    assert write_dump({"reason": "stall", "cycle": 1}) is None


def test_raise_liveness_names_busy_ports_and_dump(tmp_path):
    soc, _ = _small_soc()

    def handler(msg):
        yield 10**9  # park the transaction far in the future
        return None

    client = soc.ports.port("test.stuck", tile=0)
    server = soc.ports.port("test.stuck.srv", tile=1)
    server.bind(handler)
    soc.ports.connect(client, server)
    soc.ports.enable_tracing()
    soc.sim.spawn(client.request("poke"))
    # Step a little so the transaction is in flight, then diagnose.
    soc.sim.run(until=100)
    with pytest.raises(LivenessError) as exc:
        raise_liveness(soc, "stall", "unit trip", dump_dir=str(tmp_path))
    err = exc.value
    assert "test.stuck" in str(err)
    assert err.dump_path and err.dump_path in str(err)
    dumped = json.loads(open(err.dump_path).read())
    assert "test.stuck" in dumped["busy_ports"]
    tail = dumped["ports"]["test.stuck"]["trace_tail"]
    assert tail  # per-port trace tail rides along in the dump
