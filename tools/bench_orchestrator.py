#!/usr/bin/env python
"""Measure the orchestrator: serial vs sharded wall-clock, byte-identity.

Renders a set of harness targets three ways — ``--jobs 1`` (serial
in-process), ``--jobs N`` (worker pool), and ``--jobs N`` again against
a warm cache — verifies every rendering is byte-identical, and writes
the timings to ``BENCH_orchestrator.json``.

The parallel speedup is bounded by the host's cores (a 1-core container
measures ~1x by construction; a 4-core host measures ~2x+ because the
serial run leaves three cores idle).  Byte-identity is host-independent
and always asserted.

Usage (from the repo root):

    PYTHONPATH=src python tools/bench_orchestrator.py
    PYTHONPATH=src python tools/bench_orchestrator.py --jobs 4 \\
        --targets fig13 fig15 queue-sweep --out BENCH_orchestrator.json
    PYTHONPATH=src python tools/bench_orchestrator.py --targets all
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

DEFAULT_TARGETS = ["fig13", "fig15", "queue-sweep"]


def render_all(targets, scale, orch):
    from repro.harness.__main__ import _render
    return {target: _render(target, scale, orch) for target in targets}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel passes "
                             "(default 4)")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--targets", nargs="+", default=DEFAULT_TARGETS,
                        help="harness targets to render (or 'all')")
    parser.add_argument("--out", default=None,
                        help="write/update this JSON report "
                             "(default: print only)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="floor asserted on serial/parallel speedup "
                             "when the host has >= 2 CPUs (default 1.5)")
    args = parser.parse_args(argv)

    from repro.harness.__main__ import _TARGETS
    from repro.harness.orchestrator import DiskCache, Orchestrator

    targets = list(_TARGETS) if args.targets == ["all"] else args.targets

    def timed(orch):
        start = time.perf_counter()
        rendered = render_all(targets, args.scale, orch)
        return rendered, time.perf_counter() - start

    serial_text, serial_s = timed(Orchestrator(jobs=1))
    parallel_text, parallel_s = timed(
        Orchestrator(jobs=args.jobs, timeout=600.0))

    with tempfile.TemporaryDirectory() as tmp:
        cache = DiskCache(Path(tmp))
        _, cold_cache_s = timed(Orchestrator(jobs=args.jobs, cache=cache,
                                             timeout=600.0))
        warm_text, warm_cache_s = timed(
            Orchestrator(jobs=args.jobs, cache=cache, timeout=600.0))

    assert serial_text == parallel_text == warm_text, \
        "parallel/cached rendering diverged from serial (determinism bug)"

    report = {
        "metric": "harness wall seconds, serial vs sharded vs cached",
        "description": (
            "Renders the listed targets with --jobs 1, --jobs N, and "
            "--jobs N against a warm cache; asserts all renderings are "
            "byte-identical. Speedup is host-core-bound; cached renders "
            "skip simulation entirely."),
        "targets": targets,
        "scale": args.scale,
        "jobs": args.jobs,
        "host_cpus": os.cpu_count(),
        "serial_seconds": round(serial_s, 2),
        "parallel_seconds": round(parallel_s, 2),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "cold_cache_seconds": round(cold_cache_s, 2),
        "warm_cache_seconds": round(warm_cache_s, 2),
        "warm_cache_speedup": round(serial_s / warm_cache_s, 2),
        "byte_identical": True,
    }

    # --jobs scaling is a tracked assertion, not just a recorded number —
    # but only where it is physically measurable.  On a host with one
    # CPU a worker pool cannot beat the serial pass by construction
    # (the number measures pool overhead, not scaling), so the check is
    # skipped with the reason logged and recorded in the report instead
    # of letting a sub-1x "speedup" stand as the headline.
    host_cpus = os.cpu_count() or 1
    if host_cpus >= 2 and args.jobs >= 2:
        report["jobs_scaling"] = {
            "asserted": True,
            "floor": args.min_speedup,
            "speedup": report["parallel_speedup"],
        }
        assert report["parallel_speedup"] >= args.min_speedup, (
            f"--jobs {args.jobs} speedup {report['parallel_speedup']}x "
            f"below the {args.min_speedup}x floor on a {host_cpus}-CPU "
            "host: the worker pool is no longer scaling"
        )
    else:
        reason = (
            f"host exposes {host_cpus} CPU(s) and jobs={args.jobs}: "
            "parallel speedup is unmeasurable (< 2 CPUs measures pool "
            "overhead, not scaling); ratio check skipped"
        )
        print(f"jobs-scaling check SKIPPED: {reason}", file=sys.stderr)
        report["jobs_scaling"] = {
            "asserted": False,
            "floor": args.min_speedup,
            "skip_reason": reason,
        }

    print(json.dumps(report, indent=2))
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
