#!/usr/bin/env python
"""Load-generate against the simulation service; measure + verify.

Boots a real ``python -m repro.harness.service`` subprocess, drives it
with an asyncio keep-alive HTTP client fleet, and writes
``BENCH_service.json`` with:

- submit latency p50/p90/p99 (ms) and requests/sec under ``--connections``
  concurrent clients issuing ``--requests`` total submissions spread
  over ``--unique`` distinct specs (the duplicate-rich traffic shape the
  service exists to absorb),
- end-to-end job latency and jobs/sec (terminal jobs per second),
- the coalescing hit rate actually achieved (from ``/health`` counters:
  coalesced + cache-served over total submissions),
- backpressure accounting (429s received and honored via Retry-After),
- a kill/recover leg: submit a checkpointing job, SIGKILL the whole
  service mid-run, verify no tagged worker processes survive, restart on
  the same workdir, and require the journal-recovered job to finish
  with the bit-identical golden identity of an uninterrupted run.

``--smoke`` shrinks the load to CI size and keeps the kill/recover leg —
that is the shape the ``service-smoke`` CI job drives.

Usage (from the repo root):

    PYTHONPATH=src python tools/bench_service.py --out BENCH_service.json
    PYTHONPATH=src python tools/bench_service.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import platform
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SERVICE_TAG_PREFIX = "bench-service"

#: Kill-target spec: big enough to checkpoint several times before it
#: finishes (~400k cycles), so the SIGKILL lands mid-run.
KILL_SPEC = {"workload": "spmv", "technique": "doall", "threads": 2,
             "scale": 4, "checkpoint_every": 40_000}


def percentile(samples, fraction):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def latency_summary(samples):
    return {"p50_ms": round(1e3 * percentile(samples, 0.50), 3),
            "p90_ms": round(1e3 * percentile(samples, 0.90), 3),
            "p99_ms": round(1e3 * percentile(samples, 0.99), 3),
            "max_ms": round(1e3 * max(samples), 3),
            "samples": len(samples)} if samples else {"samples": 0}


# -- service subprocess management -------------------------------------------------


def boot_service(workdir: Path, tag: str, workers: int = 4,
                 queue_depth: int = 64, fsync: bool = True,
                 timeout: float = 30.0) -> tuple:
    """Start a service subprocess; returns (Popen, port)."""
    port_file = workdir / "port"
    port_file.unlink(missing_ok=True)
    cmd = [sys.executable, "-m", "repro.harness.service",
           "--workdir", str(workdir), "--port", "0",
           "--port-file", str(port_file), "--workers", str(workers),
           "--queue-depth", str(queue_depth), "--tag", tag]
    if not fsync:
        cmd.append("--no-fsync")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(cmd, env=env, cwd=str(REPO),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return proc, int(text)
        if proc.poll() is not None:
            raise RuntimeError(f"service exited early (rc={proc.returncode})")
        time.sleep(0.02)
    proc.kill()
    raise RuntimeError("service did not write its port file in time")


def tagged_pids(tag: str):
    """PIDs whose command line carries the tag (service + its workers,
    which inherit the command line via fork)."""
    pids = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            cmdline = (entry / "cmdline").read_bytes()
        except OSError:
            continue
        if tag.encode() in cmdline:
            pids.append(int(entry.name))
    return pids


def wait_no_tagged(tag: str, timeout: float = 10.0) -> list:
    """Wait for every tagged process to vanish (workers detect the dead
    parent via their heartbeat ppid check); returns the survivors."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        alive = tagged_pids(tag)
        if not alive:
            return []
        time.sleep(0.1)
    return tagged_pids(tag)


# -- asyncio HTTP client -----------------------------------------------------------


class Client:
    """One keep-alive connection speaking the service's HTTP dialect."""

    def __init__(self, port: int):
        self.port = port
        self.reader = None
        self.writer = None

    async def connect(self):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port)

    async def close(self):
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def request(self, method: str, path: str, body=None):
        if self.writer is None:
            await self.connect()
        payload = json.dumps(body).encode() if body is not None else b""
        head = (f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n\r\n")
        self.writer.write(head.encode() + payload)
        await self.writer.drain()
        status_line = await self.reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        data = await self.reader.readexactly(length) if length else b"{}"
        return status, headers, json.loads(data)


# -- load phase --------------------------------------------------------------------


def load_specs(unique: int):
    """The duplicate-rich spec pool: cheap cells, round-robined."""
    pool = []
    for index in range(unique):
        pool.append({"workload": ("spmv", "sdhp")[index % 2],
                     "technique": ("lima", "doall")[index % 2],
                     "threads": 1 if index % 2 == 0 else 2,
                     "seed": index // 2})
    return pool


async def drive_load(port: int, requests: int, connections: int,
                     unique: int):
    specs = load_specs(unique)
    submit_latencies = []
    counter = {"sent": 0, "rejected_429": 0, "retry_after_honored": 0,
               "errors": 0}
    job_ids = {}
    lock = asyncio.Lock()

    async def client_task(client_index: int):
        client = Client(port)
        try:
            while True:
                async with lock:
                    if counter["sent"] >= requests:
                        return
                    sequence = counter["sent"]
                    counter["sent"] += 1
                spec = specs[sequence % unique]
                started = time.perf_counter()
                try:
                    status, headers, body = await client.request(
                        "POST", "/jobs", {"spec": spec, "deadline_s": 120})
                except (ConnectionError, asyncio.IncompleteReadError):
                    counter["errors"] += 1
                    client = Client(port)
                    continue
                submit_latencies.append(time.perf_counter() - started)
                if status == 429:
                    counter["rejected_429"] += 1
                    retry = float(headers.get("retry-after", 1))
                    counter["retry_after_honored"] += 1
                    await asyncio.sleep(min(retry, 5.0))
                elif status in (200, 202):
                    job_ids.setdefault(body["job"],
                                       time.perf_counter())
                else:
                    counter["errors"] += 1
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(client_task(i) for i in range(connections)))
    submit_wall = time.perf_counter() - started

    # Completion phase: one long-poll per unique job.
    e2e_latencies = []
    terminal_states = {}

    async def wait_task(job_id: str, submitted_at: float):
        client = Client(port)
        try:
            while True:
                _, _, body = await client.request(
                    "GET", f"/jobs/{job_id}?wait=20")
                if body.get("state") not in ("queued", "running"):
                    terminal_states[job_id] = body.get("state")
                    e2e_latencies.append(time.perf_counter() - submitted_at)
                    return
        finally:
            await client.close()

    await asyncio.gather(*(wait_task(job, t0)
                           for job, t0 in job_ids.items()))
    total_wall = time.perf_counter() - started

    health_client = Client(port)
    _, _, health = await health_client.request("GET", "/health")
    await health_client.close()
    return {"submit_wall_s": round(submit_wall, 3),
            "total_wall_s": round(total_wall, 3),
            "submit_latency": latency_summary(submit_latencies),
            "e2e_job_latency": latency_summary(e2e_latencies),
            "requests_per_sec": round(counter["sent"] / submit_wall, 1),
            "jobs_per_sec": round(len(job_ids) / total_wall, 2),
            "unique_jobs": len(job_ids),
            "terminal_states": sorted(set(terminal_states.values())),
            **counter}, health


# -- kill/recover leg --------------------------------------------------------------


def golden_identity(spec_wire):
    """The uninterrupted in-process result the recovered job must match."""
    from repro.harness.orchestrator import RunSpec, execute_spec
    spec = RunSpec(workload=spec_wire["workload"],
                   technique=spec_wire["technique"],
                   threads=spec_wire["threads"],
                   scale=spec_wire.get("scale", 1),
                   seed=spec_wire.get("seed", 0))
    return execute_spec(spec).identity()


async def kill_recover_leg(workdir: Path, tag: str):
    """SIGKILL the whole service mid-job; restart; demand a journal
    recovery that resumes from a checkpoint to the golden answer."""
    outcome = {"ran": True, "kill_attempts": 0, "killed_mid_run": False,
               "orphans_after_kill": None, "recovered": False,
               "resumed": False, "identity_match": False, "state": None}
    for attempt in range(5):
        outcome["kill_attempts"] = attempt + 1
        seed = 1000 + attempt           # fresh key per attempt (no cache)
        spec = dict(KILL_SPEC, seed=seed)
        round_tag = f"{tag}-k{attempt}"
        proc, port = boot_service(workdir, round_tag, workers=1,
                                  queue_depth=4)
        client = Client(port)
        try:
            _, _, body = await client.request(
                "POST", "/jobs", {"spec": spec, "deadline_s": 300})
            job_id = body["job"]
            checkpoint = workdir / "checkpoints" / f"{job_id}.ckpt.json"
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                _, _, status_body = await client.request(
                    "GET", f"/jobs/{job_id}")
                if status_body.get("state") not in ("queued", "running"):
                    break               # finished before we could kill
                if checkpoint.exists() and checkpoint.stat().st_size > 0:
                    outcome["killed_mid_run"] = True
                    break
                await asyncio.sleep(0.005)
        finally:
            await client.close()
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        if not outcome["killed_mid_run"]:
            continue                    # job won the race; retry

        # Workers must notice the dead supervisor and exit themselves.
        outcome["orphans_after_kill"] = wait_no_tagged(round_tag)

        proc2, port2 = boot_service(workdir, f"{tag}-r{attempt}",
                                    workers=1, queue_depth=4)
        client = Client(port2)
        try:
            _, _, health = await client.request("GET", "/health")
            outcome["recovered"] = (
                health["counters"]["recovered"] >= 1)
            _, _, final = await client.request(
                "GET", f"/jobs/{job_id}?wait=30")
            while final.get("state") in ("queued", "running"):
                _, _, final = await client.request(
                    "GET", f"/jobs/{job_id}?wait=30")
            outcome["state"] = final.get("state")
            outcome["resumed"] = bool(final.get("resumed"))
            if final.get("state") == "done":
                golden = golden_identity(spec)
                got = {name: final["result"].get(name) for name in golden}
                outcome["identity_match"] = got == golden
        finally:
            await client.close()
            proc2.send_signal(signal.SIGTERM)
            try:
                proc2.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc2.kill()
                proc2.wait()
        return outcome
    return outcome


# -- entry point -------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--requests", type=int, default=3000)
    parser.add_argument("--connections", type=int, default=200)
    parser.add_argument("--unique", type=int, default=8,
                        help="distinct specs in the traffic mix")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized load + the kill/recover leg")
    parser.add_argument("--skip-kill", action="store_true",
                        help="measure load only")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    parser.add_argument("--workdir", default=None,
                        help="persistent working directory (journals, "
                             "checkpoints survive for artifact upload); "
                             "default is a temp dir removed on exit")
    args = parser.parse_args(argv)

    if args.smoke:
        args.requests = min(args.requests, 200)
        args.connections = min(args.connections, 32)
        args.unique = min(args.unique, 4)
        args.workers = min(args.workers, 2)

    sys.path.insert(0, str(REPO / "src"))
    tag = f"{SERVICE_TAG_PREFIX}-{os.getpid()}"
    report = {
        "benchmark": "service_load",
        "smoke": args.smoke,
        "host": {"cpus": os.cpu_count(), "platform": platform.platform(),
                 "python": platform.python_version()},
        "config": {"requests": args.requests,
                   "connections": args.connections,
                   "unique_specs": args.unique,
                   "service_workers": args.workers,
                   "queue_depth": args.queue_depth},
        "methodology": (
            "A real `python -m repro.harness.service` subprocess "
            "(fsync'd journal) is driven over loopback HTTP/1.1 "
            "keep-alive by an asyncio client fleet: `connections` "
            "concurrent clients issue `requests` POST /jobs total, "
            "round-robined over `unique_specs` distinct specs, so the "
            "traffic is duplicate-rich by construction. Submit latency "
            "is per-request wall time of the POST round trip "
            "(p50/p90/p99 over all requests, including 429 responses); "
            "requests/sec is total submissions over the submission "
            "phase; e2e job latency and jobs/sec count unique jobs from "
            "first submission to terminal state; the coalescing hit "
            "rate is (coalesced + cache-served) / submitted from the "
            "service's own /health counters. 429s are honored by "
            "sleeping the Retry-After hint. The kill/recover leg "
            "SIGKILLs the whole service once a checkpoint exists "
            "mid-job, asserts every tagged worker process exits on its "
            "own, restarts on the same workdir, and requires the "
            "journal-recovered job to resume and match the golden "
            "identity of an uninterrupted in-process run."),
    }

    failures = []
    if args.workdir:
        Path(args.workdir).mkdir(parents=True, exist_ok=True)
        tmp_ctx = contextlib.nullcontext(args.workdir)
    else:
        tmp_ctx = tempfile.TemporaryDirectory(prefix="bench-service-")
    with tmp_ctx as tmp:
        workdir = Path(tmp) / "load"
        workdir.mkdir(exist_ok=True)
        proc, port = boot_service(workdir, tag, workers=args.workers,
                                  queue_depth=args.queue_depth)
        try:
            load, health = asyncio.run(drive_load(
                port, args.requests, args.connections, args.unique))
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        counters = health["counters"]
        absorbed = counters["coalesced"] + counters["served_cached"] \
            + counters["served_stale"]
        load["coalescing"] = {
            "submitted": counters["submitted"],
            "coalesced": counters["coalesced"],
            "served_cached": counters["served_cached"],
            "hit_rate": round(absorbed / max(1, counters["submitted"]), 4),
            "sims_admitted": counters["admitted"]}
        report["load"] = load
        report["health_at_end"] = {
            "status": health["status"], "breaker": health["breaker"],
            "counters": counters, "journal": health["journal"]}
        if load["errors"]:
            failures.append(f"{load['errors']} transport errors under load")
        if set(load["terminal_states"]) - {"done"}:
            failures.append(
                f"non-done terminal states: {load['terminal_states']}")

        if not args.skip_kill:
            kill_dir = Path(tmp) / "kill"
            kill_dir.mkdir(exist_ok=True)
            report["kill_recover"] = asyncio.run(
                kill_recover_leg(kill_dir, tag))
            kr = report["kill_recover"]
            if not kr["killed_mid_run"]:
                failures.append("kill/recover: never caught the job "
                                "mid-run (host too fast/slow?)")
            else:
                if kr["orphans_after_kill"]:
                    failures.append(f"orphan workers survived the kill: "
                                    f"{kr['orphans_after_kill']}")
                if not (kr["recovered"] and kr["state"] == "done"
                        and kr["identity_match"]):
                    failures.append(f"recovery failed: {kr}")

    report["ok"] = not failures
    report["failures"] = failures
    print(json.dumps(report, indent=2))
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.out}", file=sys.stderr)
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main())
