#!/usr/bin/env python
"""Inspect, validate, and resume SoC checkpoint files.

A checkpoint (:mod:`repro.sim.checkpoint`) pins one cycle of one run:
per-subsystem sha256 digests, the stats dump, optionally the pickled
``RunSpec`` that rebuilds the experiment, and a whole-file content
digest.  This tool is the operator's view of those files:

- ``inspect``  — print the header, metadata, and per-subsystem digests
  (``--json`` for machine-readable output);
- ``validate`` — load the file under full content-digest verification
  and report whether it is intact and resumable;
- ``resume``   — rebuild the embedded spec's experiment, replay to the
  saved cycle under digest verification, run it to completion, and
  print the final cycle count and stats digest (``--checkpoint-out`` /
  ``--checkpoint-every`` keep checkpointing the continued run).

Usage (from the repo root):

    PYTHONPATH=src python tools/checkpoint_ctl.py inspect run.ckpt.json
    PYTHONPATH=src python tools/checkpoint_ctl.py inspect run.ckpt.json --json
    PYTHONPATH=src python tools/checkpoint_ctl.py validate run.ckpt.json
    PYTHONPATH=src python tools/checkpoint_ctl.py resume run.ckpt.json \\
        --checkpoint-out run.ckpt.json --checkpoint-every 100000

Exit codes: 0 ok, 2 corrupt/unreadable checkpoint, 3 valid but
unresumable (no embedded RunSpec), 4 replay divergence on resume.
"""

from __future__ import annotations

import argparse
import json
import sys


def _info(ckpt) -> dict:
    """The machine-readable inspect payload (spec pickle elided)."""
    return {
        "cycle": ckpt.cycle,
        "events_executed": ckpt.events_executed,
        "schema": ckpt.schema,
        "label": ckpt.label,
        "resumable": ckpt.resumable,
        "spec_key": ckpt.spec_key,
        "meta": dict(ckpt.meta),
        "stats_entries": len(ckpt.stats),
        "content_sha256": ckpt.content_digest(),
        "digests": dict(ckpt.digests),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser("inspect", help="print header + digests")
    inspect.add_argument("path")
    inspect.add_argument("--json", action="store_true",
                         help="machine-readable output")

    validate = sub.add_parser("validate",
                              help="verify the file's content digest")
    validate.add_argument("path")

    resume = sub.add_parser("resume",
                            help="replay + continue the embedded spec's run")
    resume.add_argument("path")
    resume.add_argument("--checkpoint-out", default=None, metavar="CKPT",
                        help="keep checkpointing the continued run here")
    resume.add_argument("--checkpoint-every", type=int, default=100_000,
                        help="cycles between checkpoints for "
                             "--checkpoint-out (default 100000)")
    args = parser.parse_args(argv)

    from repro.sim.checkpoint import (
        Checkpoint,
        CheckpointCorruptError,
        CheckpointDivergenceError,
        CheckpointUnresumableError,
        digest_of,
        resume_checkpoint,
    )

    try:
        ckpt = Checkpoint.load(args.path)
    except CheckpointCorruptError as err:
        print(f"CORRUPT CHECKPOINT: {err}", file=sys.stderr)
        return 2

    if args.command == "validate":
        print(f"valid checkpoint: cycle={ckpt.cycle} schema={ckpt.schema} "
              f"resumable={ckpt.resumable} "
              f"content_sha256={ckpt.content_digest()[:16]}")
        return 0

    if args.command == "inspect":
        info = _info(ckpt)
        if args.json:
            print(json.dumps(info, indent=2, sort_keys=True))
            return 0
        print(f"checkpoint {args.path}")
        for field in ("cycle", "events_executed", "schema", "label",
                      "resumable", "spec_key", "stats_entries",
                      "content_sha256"):
            print(f"  {field:18s} {info[field]}")
        for key, value in sorted(info["meta"].items()):
            print(f"  meta.{key:13s} {value}")
        print("  per-subsystem digests:")
        for name, digest in sorted(info["digests"].items()):
            print(f"    {name:12s} {digest}")
        return 0

    overrides = {}
    if args.checkpoint_out:
        overrides = {"checkpoint_every": args.checkpoint_every,
                     "checkpoint_path": args.checkpoint_out}
    try:
        result = resume_checkpoint(args.path, **overrides)
    except CheckpointUnresumableError as err:
        print(f"UNRESUMABLE: {err}", file=sys.stderr)
        return 3
    except CheckpointDivergenceError as err:
        print(f"REPLAY DIVERGED: {err}", file=sys.stderr)
        return 4
    print(f"resumed '{ckpt.label}' from cycle {ckpt.cycle}: "
          f"completed at cycles={result.cycles} "
          f"events={result.soc.sim.events_executed} "
          f"stats_sha256={digest_of(result.soc.stats_snapshot())[:16]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
