#!/usr/bin/env python
"""Replay a fault-fuzz case (or an ad-hoc fault seed) with full logging.

When ``tests/test_fault_fuzz.py`` fails on "case N", this reproduces it
exactly — same config, kernel, technique, dataset, and fault plan — and
prints the fault event log, the run summary, and (on a liveness trip or
invariant violation) the structured diagnosis.  It can also drive an
arbitrary (workload, technique, fault-seed) triple outside the sweep.

Usage (from the repo root):

    PYTHONPATH=src python tools/fault_replay.py --case 17
    PYTHONPATH=src python tools/fault_replay.py --case 17 --events 50
    PYTHONPATH=src python tools/fault_replay.py --app bfs \\
        --technique maple-decouple --threads 2 --fault-seed 12345
    PYTHONPATH=src python tools/fault_replay.py --case 3 \\
        --dump-dir /tmp/watchdog-dumps
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--case", type=int, default=None,
                        help="fault-fuzz case number to replay exactly")
    parser.add_argument("--master-seed", type=int, default=None,
                        help="override the sweep's master seed")
    parser.add_argument("--app", default="spmv",
                        help="workload for ad-hoc mode (ignored with --case)")
    parser.add_argument("--technique", default="maple-decouple")
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fault-seed", type=int, default=1,
                        help="FaultPlan.random seed for ad-hoc mode")
    parser.add_argument("--events", type=int, default=20,
                        help="how many injected fault events to print")
    parser.add_argument("--dump-dir", default=None,
                        help="directory for watchdog JSON dumps on failure")
    args = parser.parse_args(argv)

    from repro.harness.faultfuzz import FUZZ_MASTER_SEED, FUZZ_WATCHDOG, fuzz_case
    from repro.harness.techniques import run_workload
    from repro.sim import FaultPlan, InvariantViolation, LivenessError

    if args.case is not None:
        fc = fuzz_case(args.case, args.master_seed if args.master_seed
                       is not None else FUZZ_MASTER_SEED)
        print(fc.describe())
        run_kwargs = dict(config=fc.config, threads=fc.threads,
                          dataset=fc.dataset, seed=fc.seed)
        workload, technique, plan = fc.workload, fc.technique, fc.plan
    else:
        plan = FaultPlan.random(args.fault_seed)
        print(f"ad-hoc: {args.app}/{args.technique} x{args.threads} "
              f"scale={args.scale} faults[{plan.describe()}]")
        run_kwargs = dict(threads=args.threads, scale=args.scale,
                          seed=args.seed)
        workload, technique = args.app, args.technique

    watchdog = dict(FUZZ_WATCHDOG)
    if args.dump_dir:
        watchdog["dump_dir"] = args.dump_dir

    try:
        result = run_workload(workload, technique, check=True,
                              fault_plan=plan, check_invariants=True,
                              watchdog=watchdog, **run_kwargs)
    except LivenessError as err:
        print(f"\nLIVENESS TRIP: {err}", file=sys.stderr)
        print(json.dumps(err.diagnosis, indent=2, sort_keys=True,
                         default=repr), file=sys.stderr)
        return 2
    except InvariantViolation as err:
        print(f"\nINVARIANT VIOLATION:\n{err}", file=sys.stderr)
        return 3
    except AssertionError as err:
        print(f"\nRESULT CHECK FAILED: {err}", file=sys.stderr)
        return 4

    injector = result.soc.fault_injector
    print(f"\ncompleted correct: cycles={result.cycles} "
          f"fault_events={result.fault_events} "
          f"invariants_checked={result.invariants_checked}")
    if injector is not None and injector.events:
        shown = injector.events[:args.events]
        print(f"\nfault event log (first {len(shown)} of "
              f"{len(injector.events)}):")
        for cycle, kind, detail in shown:
            print(f"  @{cycle:<10} {kind:<12} {detail}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
