#!/usr/bin/env python
"""Replay a fault-fuzz or integrity-fuzz case with full logging.

When ``tests/test_fault_fuzz.py`` (or ``tests/test_integrity_fuzz.py``,
with ``--integrity``) fails on "case N", this reproduces it exactly —
same config, kernel, technique, dataset, and fault plan — and prints the
fault event log, the run summary, and (on a liveness trip, invariant
violation, or data-integrity failure) the structured diagnosis.  It can
also drive an arbitrary (workload, technique, fault-seed) triple outside
the sweeps.

Determinism is checkable, not assumed: ``--record LOG`` saves the run's
fault-hit log and cycle count as JSON; ``--check LOG`` replays and
compares bit-for-bit, printing a diff and exiting nonzero on any
divergence.

Usage (from the repo root):

    PYTHONPATH=src python tools/fault_replay.py --case 17
    PYTHONPATH=src python tools/fault_replay.py --case 17 --events 50
    PYTHONPATH=src python tools/fault_replay.py --integrity --case 3
    PYTHONPATH=src python tools/fault_replay.py --app bfs \\
        --technique maple-decouple --threads 2 --fault-seed 12345
    PYTHONPATH=src python tools/fault_replay.py --integrity --app spmv \\
        --technique maple-decouple --threads 2 --fault-seed 99
    PYTHONPATH=src python tools/fault_replay.py --case 3 \\
        --dump-dir /tmp/watchdog-dumps
    PYTHONPATH=src python tools/fault_replay.py --case 5 --record /tmp/log.json
    PYTHONPATH=src python tools/fault_replay.py --case 5 --check /tmp/log.json
    # save periodic checkpoints, then reproduce from the last one
    PYTHONPATH=src python tools/fault_replay.py --case 5 \\
        --checkpoint-out /tmp/c5.ckpt.json --checkpoint-every 20000
    PYTHONPATH=src python tools/fault_replay.py --case 5 \\
        --from-checkpoint /tmp/c5.ckpt.json

Exit codes: 0 ok, 2 liveness trip, 3 invariant violation, 4 result-check
failure, 5 replay divergence (``--check``), 6 data-integrity error,
7 corrupt checkpoint (``--from-checkpoint``), 8 checkpoint replay
divergence (the resumed state does not match the saved digests).
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys


def _event_lines(cycles, events):
    """The canonical, diffable rendering of one run's fault-hit log."""
    lines = [f"cycles {cycles}"]
    lines.extend(f"@{cycle} {kind} {detail}" for cycle, kind, detail in events)
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--case", type=int, default=None,
                        help="fuzz case number to replay exactly")
    parser.add_argument("--integrity", action="store_true",
                        help="replay from the integrity-fuzz sweep (armed "
                             "protection + corruption plan) instead of the "
                             "fault-fuzz sweep")
    parser.add_argument("--master-seed", type=int, default=None,
                        help="override the sweep's master seed")
    parser.add_argument("--app", default="spmv",
                        help="workload for ad-hoc mode (ignored with --case)")
    parser.add_argument("--technique", default="maple-decouple")
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fault-seed", type=int, default=1,
                        help="FaultPlan.random (or .random_integrity, with "
                             "--integrity) seed for ad-hoc mode")
    parser.add_argument("--events", type=int, default=20,
                        help="how many injected fault events to print")
    parser.add_argument("--dump-dir", default=None,
                        help="directory for watchdog JSON dumps on failure")
    parser.add_argument("--record", default=None, metavar="LOG",
                        help="write the fault-hit log + cycles as JSON")
    parser.add_argument("--check", default=None, metavar="LOG",
                        help="replay and compare against a recorded log; "
                             "exits 5 with a diff on divergence")
    parser.add_argument("--checkpoint-out", default=None, metavar="CKPT",
                        help="save periodic checkpoints of this replay "
                             "(see --checkpoint-every)")
    parser.add_argument("--checkpoint-every", type=int, default=20_000,
                        help="cycles between --checkpoint-out checkpoints "
                             "(default 20000)")
    parser.add_argument("--from-checkpoint", default=None, metavar="CKPT",
                        help="resume the replay from a saved checkpoint "
                             "(verified replay to the saved cycle, then "
                             "continue); exits 7 on a corrupt file, 8 on "
                             "state divergence")
    args = parser.parse_args(argv)

    from repro.harness.faultfuzz import FUZZ_MASTER_SEED, FUZZ_WATCHDOG, fuzz_case
    from repro.harness.integrityfuzz import INTEGRITY_MASTER_SEED, integrity_case
    from repro.harness.techniques import run_workload
    from repro.sim import (
        DataIntegrityError,
        FaultPlan,
        InvariantViolation,
        LivenessError,
    )
    from repro.sim.checkpoint import (
        Checkpoint,
        CheckpointCorruptError,
        CheckpointDivergenceError,
    )

    if args.case is not None:
        if args.integrity:
            fc = integrity_case(args.case, args.master_seed if args.master_seed
                                is not None else INTEGRITY_MASTER_SEED)
        else:
            fc = fuzz_case(args.case, args.master_seed if args.master_seed
                           is not None else FUZZ_MASTER_SEED)
        print(fc.describe())
        run_kwargs = dict(config=fc.config, threads=fc.threads,
                          dataset=fc.dataset, seed=fc.seed)
        workload, technique, plan = fc.workload, fc.technique, fc.plan
    else:
        plan = (FaultPlan.random_integrity(args.fault_seed) if args.integrity
                else FaultPlan.random(args.fault_seed))
        mode = "integrity" if args.integrity else "faults"
        print(f"ad-hoc: {args.app}/{args.technique} x{args.threads} "
              f"scale={args.scale} {mode}[{plan.describe()}]")
        run_kwargs = dict(threads=args.threads, scale=args.scale,
                          seed=args.seed)
        workload, technique = args.app, args.technique

    if args.integrity:
        run_kwargs["integrity_plan"] = plan
    else:
        run_kwargs["fault_plan"] = plan

    watchdog = dict(FUZZ_WATCHDOG)
    if args.dump_dir:
        watchdog["dump_dir"] = args.dump_dir

    if args.checkpoint_out:
        run_kwargs["checkpoint_every"] = args.checkpoint_every
        run_kwargs["checkpoint_path"] = args.checkpoint_out
    if args.from_checkpoint:
        try:
            run_kwargs["resume_from"] = Checkpoint.load(args.from_checkpoint)
        except CheckpointCorruptError as err:
            print(f"CORRUPT CHECKPOINT: {err}", file=sys.stderr)
            return 7
        print(f"resuming from checkpoint @{run_kwargs['resume_from'].cycle} "
              f"({args.from_checkpoint})")

    try:
        result = run_workload(workload, technique, check=True,
                              check_invariants=True,
                              watchdog=watchdog, **run_kwargs)
    except CheckpointDivergenceError as err:
        print(f"\nCHECKPOINT REPLAY DIVERGED: {err}", file=sys.stderr)
        return 8
    except LivenessError as err:
        print(f"\nLIVENESS TRIP: {err}", file=sys.stderr)
        print(json.dumps(err.diagnosis, indent=2, sort_keys=True,
                         default=repr), file=sys.stderr)
        return 2
    except InvariantViolation as err:
        print(f"\nINVARIANT VIOLATION:\n{err}", file=sys.stderr)
        return 3
    except DataIntegrityError as err:
        print(f"\nDATA-INTEGRITY FAILURE: {err}", file=sys.stderr)
        print(json.dumps(err.describe(), indent=2, sort_keys=True),
              file=sys.stderr)
        if err.dump_path:
            print(f"diagnosis dump: {err.dump_path}", file=sys.stderr)
        return 6
    except AssertionError as err:
        print(f"\nRESULT CHECK FAILED: {err}", file=sys.stderr)
        return 4

    injector = result.soc.fault_injector
    events = list(injector.events) if injector is not None else []
    print(f"\ncompleted correct: cycles={result.cycles} "
          f"fault_events={result.fault_events} "
          f"invariants_checked={result.invariants_checked}")
    if events:
        shown = events[:args.events]
        print(f"\nfault event log (first {len(shown)} of {len(events)}):")
        for cycle, kind, detail in shown:
            print(f"  @{cycle:<10} {kind:<12} {detail}")

    if args.record:
        with open(args.record, "w", encoding="utf-8") as handle:
            json.dump({"case": args.case, "integrity": args.integrity,
                       "cycles": result.cycles,
                       "events": [list(e) for e in events]},
                      handle, indent=2)
        print(f"\nrecorded {len(events)} event(s) -> {args.record}")

    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            recorded = json.load(handle)
        want = _event_lines(recorded["cycles"],
                            [tuple(e) for e in recorded["events"]])
        got = _event_lines(result.cycles, events)
        if want != got:
            print(f"\nREPLAY DIVERGED from {args.check}:", file=sys.stderr)
            for line in difflib.unified_diff(want, got, fromfile="recorded",
                                             tofile="replayed", lineterm=""):
                print(line, file=sys.stderr)
            return 5
        print(f"\nreplay matches {args.check} "
              f"({len(events)} event(s), {result.cycles} cycles)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
