#!/usr/bin/env python
"""Profile one experiment cell under cProfile.

The companion to ``benchmarks/test_bench_simcore.py``: when the
throughput floor trips, this shows where the cycles went.  Runs a single
``run_workload`` cell with the profiler attached and prints the hottest
functions plus the engine's own events/sec.

Usage (from the repo root):

    PYTHONPATH=src python tools/profile_run.py --app spmv \\
        --technique maple-decouple --threads 4
    PYTHONPATH=src python tools/profile_run.py --app bfs --technique doall \\
        --sort tottime --top 40
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--app", default="spmv",
                        help="workload name (default: spmv)")
    parser.add_argument("--technique", default="maple-decouple",
                        help="execution technique (default: maple-decouple)")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--scale", type=int, default=1,
                        help="dataset scale factor (default: 1)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default: cumulative)")
    parser.add_argument("--top", type=int, default=30,
                        help="rows of profile output (default: 30)")
    parser.add_argument("--outfile", default=None,
                        help="also dump raw pstats data to this path")
    args = parser.parse_args(argv)

    from repro.harness.techniques import run_workload

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_workload(args.app, args.technique, threads=args.threads,
                          scale=args.scale)
    profiler.disable()

    sim = result.soc.sim
    rate = (sim.events_executed / sim.run_wall_seconds
            if sim.run_wall_seconds else float("nan"))
    print(f"{args.app}/{args.technique} threads={args.threads} "
          f"scale={args.scale}: {result.cycles} cycles, "
          f"{sim.events_executed} events, "
          f"{sim.run_wall_seconds:.3f}s in Simulator.run -> {rate:,.0f} ev/s")
    print()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.outfile:
        stats.dump_stats(args.outfile)
        print(f"raw profile written to {args.outfile}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
