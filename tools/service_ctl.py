#!/usr/bin/env python
"""Submit/status/health CLI for the simulation service.

Talks plain HTTP to a running ``python -m repro.harness.service``
instance, prints the JSON the service returns, and maps outcomes onto
exit codes so shell scripts can branch on them:

    0  success (job done / status fetched / health ok)
    1  the job reached a terminal failure state (failed/timeout/cancelled)
    2  usage error (bad arguments, invalid spec -> HTTP 400)
    3  cannot reach the service
    4  admission rejected (HTTP 429 queue full / 503 circuit open)

Usage (from the repo root):

    PYTHONPATH=src python tools/service_ctl.py --url http://127.0.0.1:8642 \\
        submit --workload spmv --technique lima --threads 1 --wait
    PYTHONPATH=src python tools/service_ctl.py status <job-id> --wait 30
    PYTHONPATH=src python tools/service_ctl.py health
    PYTHONPATH=src python tools/service_ctl.py cancel <job-id>

``--url`` defaults to ``$REPRO_SERVICE_URL``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import urllib.error
import urllib.request

EXIT_OK = 0
EXIT_JOB_FAILED = 1
EXIT_USAGE = 2
EXIT_UNREACHABLE = 3
EXIT_REJECTED = 4


def http(url: str, method: str, path: str, body=None, timeout: float = 60.0):
    """One request; returns (status, parsed-JSON body)."""
    request = urllib.request.Request(
        url.rstrip("/") + path, method=method,
        data=json.dumps(body).encode() if body is not None else None,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read() or b"{}")
    except (urllib.error.URLError, ConnectionError, TimeoutError) as err:
        print(f"service unreachable at {url}: {err}", file=sys.stderr)
        raise SystemExit(EXIT_UNREACHABLE) from err


def emit(payload) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def exit_for(status: int, payload) -> int:
    if status in (429, 503):
        return EXIT_REJECTED
    if status == 400:
        return EXIT_USAGE
    if status >= 400:
        return EXIT_JOB_FAILED
    state = payload.get("state")
    if state in ("failed", "timeout", "cancelled", "interrupted"):
        return EXIT_JOB_FAILED
    return EXIT_OK


def cmd_submit(url: str, args) -> int:
    spec = {"workload": args.workload, "technique": args.technique,
            "threads": args.threads, "scale": args.scale, "seed": args.seed}
    if args.checkpoint_every:
        spec["checkpoint_every"] = args.checkpoint_every
    body = {"spec": spec, "priority": args.priority}
    if args.deadline is not None:
        body["deadline_s"] = args.deadline
    status, payload = http(url, "POST", "/jobs", body)
    if status in (400, 429, 503) or not args.wait:
        emit(payload)
        return exit_for(status, payload)
    job = payload["job"]
    while payload.get("state") in ("queued", "running"):
        status, payload = http(url, "GET", f"/jobs/{job}?wait=30")
    emit(payload)
    return exit_for(status, payload)


def cmd_status(url: str, args) -> int:
    path = f"/jobs/{args.job}"
    if args.wait:
        path += f"?wait={args.wait}"
    status, payload = http(url, "GET", path)
    emit(payload)
    return exit_for(status, payload)


def cmd_cancel(url: str, args) -> int:
    status, payload = http(url, "POST", f"/jobs/{args.job}/cancel")
    emit(payload)
    return EXIT_OK if status == 200 else exit_for(status, payload)


def cmd_health(url: str, args) -> int:
    status, payload = http(url, "GET", "/health")
    emit(payload)
    if status != 200:
        return EXIT_JOB_FAILED
    return EXIT_OK if payload.get("status") == "ok" else EXIT_JOB_FAILED


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--url", default=os.environ.get("REPRO_SERVICE_URL"),
                        help="service base URL (default $REPRO_SERVICE_URL)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="submit one job")
    p_submit.add_argument("--workload", required=True)
    p_submit.add_argument("--technique", required=True)
    p_submit.add_argument("--threads", type=int, default=2)
    p_submit.add_argument("--scale", type=int, default=1)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--checkpoint-every", type=int, default=0)
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument("--deadline", type=float, default=None,
                          help="deadline budget in seconds")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job reaches a terminal state")
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser("status", help="fetch one job's state")
    p_status.add_argument("job")
    p_status.add_argument("--wait", type=float, default=0,
                          help="long-poll up to this many seconds")
    p_status.set_defaults(func=cmd_status)

    p_cancel = sub.add_parser("cancel", help="request job cancellation")
    p_cancel.add_argument("job")
    p_cancel.set_defaults(func=cmd_cancel)

    p_health = sub.add_parser("health", help="service health + counters")
    p_health.set_defaults(func=cmd_health)

    args = parser.parse_args(argv)
    if not args.url:
        parser.error("--url (or $REPRO_SERVICE_URL) is required")
    return args.func(args.url, args)


if __name__ == "__main__":
    raise SystemExit(main())
