#!/usr/bin/env python
"""Export per-port telemetry traces as Chrome-trace JSON.

Every cross-component seam in the SoC model is a Port pair with a
telemetry tap (see ``repro.sim.port``).  This tool enables the taps' ring
buffers, runs a workload, and converts the merged trace into the Chrome
trace-event format: one timeline row per port, a span per transaction
(request→completion on the issuing port, receive→respond on the serving
port), and instants for fire-and-forget posts.  Open the output in
chrome://tracing or https://ui.perfetto.dev.

The ``--fig14`` mode reruns the paper's Fig. 14 microbenchmark (one core
produces into MAPLE, waits, then consumes) and *derives* the consume
round trip from the port trace — the same ~25 cycles the analytic
segment budget and ``benchmarks/test_bench_fig14_roundtrip.py`` pin —
instead of relying on hand-placed instrumentation.

Usage:
    python tools/trace_export.py --fig14 [-o fig14_trace.json]
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cpu import Alu, Thread  # noqa: E402
from repro.params import FPGA_CONFIG  # noqa: E402
from repro.system import Soc  # noqa: E402


def spans_from_events(events):
    """Pair trace events into spans and instants.

    Returns ``(spans, instants)`` where each span is
    ``(port, kind, txn, start, end, phase_pair)`` and each instant is
    ``(port, kind, txn, cycle, phase)``.
    """
    opens = {}
    spans = []
    instants = []
    for cycle, port, kind, txn, phase in events:
        if phase in ("req", "recv"):
            opens[(port, txn, phase)] = (cycle, kind)
        elif phase in ("done", "err"):
            start, _ = opens.pop((port, txn, "req"), (cycle, kind))
            spans.append((port, kind, txn, start, cycle, "issue"))
        elif phase == "resp":
            start, _ = opens.pop((port, txn, "recv"), (cycle, kind))
            spans.append((port, kind, txn, start, cycle, "serve"))
        else:  # post / probe
            instants.append((port, kind, txn, cycle, phase))
    # Transactions still open when the trace ends surface as instants.
    for (port, txn, phase), (cycle, kind) in opens.items():
        instants.append((port, kind, txn, cycle, f"open-{phase}"))
    return spans, instants


def chrome_trace(port_order, events):
    """The Chrome trace-event JSON document for a merged event list."""
    tids = {name: tid for tid, name in enumerate(port_order)}
    trace = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
         "args": {"name": name}}
        for name, tid in tids.items()
    ]
    spans, instants = spans_from_events(events)
    for port, kind, txn, start, end, role in spans:
        trace.append({
            "name": kind, "cat": role, "ph": "X", "pid": 0,
            "tid": tids.setdefault(port, len(tids)),
            "ts": start, "dur": end - start, "args": {"txn": txn},
        })
    for port, kind, txn, cycle, phase in instants:
        trace.append({
            "name": kind, "cat": phase, "ph": "i", "s": "t", "pid": 0,
            "tid": tids.setdefault(port, len(tids)),
            "ts": cycle, "args": {"txn": txn},
        })
    return {"traceEvents": trace, "displayTimeUnit": "ns",
            "otherData": {"time_unit": "cycles"}}


def run_fig14(trace_limit):
    """Run the Fig. 14 probe with tracing on; returns (soc, roundtrip)."""
    soc = Soc(FPGA_CONFIG)
    soc.ports.enable_tracing(trace_limit)
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)

    def probe():
        handle = yield from api.open(0)
        yield from handle.produce(1)
        yield Alu(500)  # let the fill land: measure a non-blocking consume
        value = yield from handle.consume()
        assert value == 1

    soc.run_threads([(0, Thread(probe(), aspace, "probe"))])

    # The consume is the last mmio_load transaction on the dispatch port;
    # its issue span is the whole core->MAPLE->core round trip.
    dispatch = f"maple{soc.maples[0].instance_id}.mmio.dispatch"
    spans, _ = spans_from_events(soc.ports.trace_events())
    consumes = [s for s in spans
                if s[0] == dispatch and s[1] == "mmio_load" and s[5] == "issue"]
    if not consumes:
        raise SystemExit("no mmio_load transaction found in the port trace")
    port, kind, txn, start, end, _ = consumes[-1]
    serve = next((s for s in spans if s[5] == "serve" and s[2] == txn
                  and s[0].endswith(".mmio")), None)
    roundtrip = {
        "cycles": end - start,
        "txn": txn,
        "segments": {
            "request path + request NoC": serve[3] - start if serve else None,
            "MAPLE decode + pipeline + queue pop": (serve[4] - serve[3]
                                                    if serve else None),
            "response NoC + response path": end - serve[4] if serve else None,
        },
    }
    return soc, roundtrip


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fig14", action="store_true",
                        help="trace the Fig. 14 consume round trip")
    parser.add_argument("-o", "--out", default="trace.json",
                        help="output Chrome-trace JSON path")
    parser.add_argument("--trace-limit", type=int, default=1 << 16,
                        help="per-port trace ring capacity")
    args = parser.parse_args(argv)
    if not args.fig14:
        parser.error("choose a mode: --fig14")

    soc, roundtrip = run_fig14(args.trace_limit)
    document = chrome_trace([p.name for p in soc.ports.ports],
                            soc.ports.trace_events())
    document["otherData"]["fig14_roundtrip"] = roundtrip
    Path(args.out).write_text(json.dumps(document, indent=1))

    expected = soc.maples[0].round_trip_cycles(soc.cores[0].tile_id)
    print(f"wrote {args.out} ({len(document['traceEvents'])} events)")
    print(f"consume round trip from port trace: {roundtrip['cycles']} cycles "
          f"(txn #{roundtrip['txn']})")
    for segment, cycles in roundtrip["segments"].items():
        print(f"  {segment}: {cycles}")
    print("per-port telemetry:")
    for name, tap in soc.port_telemetry().items():
        if tap["requests"] or tap["served"] or tap["posts"]:
            print(f"  {name}: requests={tap['requests']} served={tap['served']}"
                  f" posts={tap['posts']} stalls={tap['stalls']}")
    if roundtrip["cycles"] != expected:
        print(f"MISMATCH: analytic round trip is {expected} cycles",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
